"""Crash-durable write-ahead log for the §3.1 operation log.

The paper's operation log exists so a *recovering* peer can construct
compensations after a failure, which only works if the log outlives the
process.  :class:`DurableWal` is an incremental append-only on-disk WAL
that a peer attaches to its in-memory :class:`~repro.txn.wal.OperationLog`
via the :class:`~repro.txn.wal.LogSink` hook: every appended
:class:`~repro.txn.wal.LogEntry` is streamed to disk as a
self-delimiting frame (the entry's own XML encoding, see
:func:`repro.txn.wal.entry_to_xml`), and every commit/abort-time
``truncate`` is recorded as a tombstone frame.

Segment format (``wal-000001.seg``, ``wal-000002.seg``, …)::

    AXMLWAL 1 <peer_id>\\n          header line
    E <payload-bytes>\\n<xml>\\n     one log entry (entry_to_xml text)
    T <payload-bytes>\\n<txn-id>\\n  tombstone: txn's entries truncated

Torn-tail rule: a scan reads frames in order and stops at the first
frame whose header is malformed, whose payload is shorter than its
declared length, or whose entry ``seq`` is not strictly greater than the
previous entry's in the same segment.  Everything before that point is
the durable prefix; the tail is discarded (and physically truncated by
:meth:`reload`, the restart path).  Because a frame is only appended
after the in-memory log accepted the entry, the durable prefix is always
a consistent prefix of what the peer had applied.

Group commit (``batch_size`` > 1): appends accumulate in a bounded
in-memory buffer and reach disk as **one multi-frame write** when the
buffer fills, when the virtual-time flush quantum (``flush_interval``)
expires, or when a **barrier** forces them out: tombstone frames always
flush first (a commit/compensation record must never precede its
entries), and peers flush before protocol-critical message sends (the
``flush_on_prepare`` barrier — see ``docs/DURABILITY.md``).  Buffered
frames are volatile: a crash discards them (:meth:`discard_unflushed`),
and the crashing peer undoes their document effects so the durable
prefix and the durable store agree.

Checkpoints (``checkpoint_every`` > 0): every N appended entries the
WAL publishes a :class:`~repro.txn.checkpoint.Checkpoint` — hosted
documents + the live entry set — and starts a fresh segment, so restart
replays only the segment tail written after the newest valid
checkpoint.  Retention keeps two checkpoint generations: segments
covered by the *previous* checkpoint are deleted only when the *next*
one publishes, so a checkpoint file torn by a crash mid-publish still
leaves a complete fallback (older checkpoint + longer tail).  While
checkpointing is on, segment rollover compaction is disabled —
checkpoints subsume it, and an interleaved compaction could drop a
tombstone that the checkpoint-plus-tail merge still needs.

Without those two knobs (``batch_size=1``, ``checkpoint_every=0``) the
write path is byte-for-byte the PR 5 behaviour: one flushed frame per
append, rollover compaction at ``segment_max_frames``, and none of the
new counters fire.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.txn.checkpoint import Checkpoint, CheckpointStore
from repro.txn.wal import LogEntry, entry_bytes, entry_from_xml, entry_to_xml

MAGIC = "AXMLWAL"
VERSION = 1


@dataclass
class WalScan:
    """Result of a read-only pass over the WAL directory."""

    entries: List[LogEntry] = field(default_factory=list)
    #: True when a torn tail (incomplete or seq-regressing frame) was
    #: detected and discarded during the scan.
    torn: bool = False
    #: Frames (entries + tombstones) read from the durable prefix.
    frames: int = 0
    #: Entry frames replayed from segments — with a checkpoint, only the
    #: tail written after it; without, every entry frame on disk.
    replayed: int = 0
    #: Index of the checkpoint the scan was based on (0 = none).
    checkpoint_index: int = 0
    #: Newer checkpoint files that failed validation and were skipped.
    checkpoint_torn: int = 0
    #: Document snapshots carried by the checkpoint (name → XML).
    documents: Dict[str, str] = field(default_factory=dict)


class DurableWal:
    """Append-only segmented WAL for one peer (a :class:`LogSink`).

    ``metrics`` (a :class:`repro.sim.metrics.MetricsCollector`) receives
    ``wal_appends`` / ``wal_bytes`` / ``wal_tombstones`` /
    ``wal_compactions`` counters — plus, when the respective features
    are on, ``wal_batch_flushes`` / ``wal_unflushed_discarded`` /
    ``checkpoints`` / ``checkpoint_bytes`` / ``checkpoints_torn`` and
    ``recovery_replay_entries``.  Byte counters track *logical* payload
    (:func:`repro.txn.wal.entry_bytes`, document XML lengths), never
    frame lengths — frame lengths embed process-global serials and would
    make summaries non-deterministic.
    """

    def __init__(
        self,
        directory: str,
        peer_id: str = "",
        metrics=None,
        segment_max_frames: int = 256,
        batch_size: int = 1,
        flush_interval: Optional[float] = None,
        events=None,
        checkpoint_every: int = 0,
        document_source: Optional[Callable[[], Dict[str, str]]] = None,
    ):
        if segment_max_frames < 2:
            raise ValueError("segment_max_frames must be >= 2")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.directory = directory
        self.peer_id = peer_id
        self.metrics = metrics
        self.segment_max_frames = segment_max_frames
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self.checkpoint_every = checkpoint_every
        self._document_source = document_source
        os.makedirs(directory, exist_ok=True)
        #: Mirror of the live (not-yet-truncated) entries, for rollover
        #: and checkpoints.  Includes buffered-but-unflushed entries.
        self._live: List[LogEntry] = []
        #: Per-segment byte offset of the durable prefix (set by scans).
        self._good_offsets: Dict[str, int] = {}
        #: Group-commit buffer: frames accepted but not yet on disk.
        self._pending: List[Tuple[str, str]] = []
        self._pending_entries: List[LogEntry] = []
        #: Highest entry seq ever appended (checkpoint header bookkeeping).
        self._last_seq = 0
        #: Highest entry seq durably on disk — the write-ahead high-water
        #: mark WAL shipping checks before an entry may leave the peer
        #: (buffered group-commit frames are *not* durable yet).
        self.last_durable_seq = 0
        self._appends_since_ckpt = 0
        self._ckpt_store: Optional[CheckpointStore] = (
            CheckpointStore(directory, peer_id) if checkpoint_every > 0 else None
        )
        self._ckpt_index = 0
        #: Tail watermark of the previously published checkpoint: the
        #: segments below it become deletable at the *next* publish.
        self._prev_tail = 0
        #: What the last :meth:`reload` recovered (a :class:`WalScan`).
        self.last_recovery: Optional[WalScan] = None
        self._timer = None
        if events is not None and batch_size > 1 and flush_interval:
            from repro.sim.kernel import OneShotTimer

            self._timer = OneShotTimer(events, self.flush)
        self._fh = None
        self._segment_index = 0
        self._segment_frames = 0
        existing = self._segment_paths()
        if existing or (self._ckpt_store and self._ckpt_store.paths()):
            # Adopt an existing directory (restart): scan + truncate tail.
            self.reload()
        else:
            self._open_segment(1)

    # -- paths ------------------------------------------------------------

    def _segment_name(self, index: int) -> str:
        return f"wal-{index:06d}.seg"

    @staticmethod
    def _segment_index_of(path: str) -> int:
        return int(os.path.basename(path)[4:-4])

    def _segment_paths(self) -> List[str]:
        try:
            names = sorted(
                n for n in os.listdir(self.directory)
                if n.startswith("wal-") and n.endswith(".seg")
            )
        except FileNotFoundError:
            return []
        return [os.path.join(self.directory, n) for n in names]

    def _open_segment(self, index: int) -> None:
        self._segment_index = index
        self._segment_frames = 0
        path = os.path.join(self.directory, self._segment_name(index))
        self._fh = open(path, "ab")
        if self._fh.tell() == 0:
            self._fh.write(f"{MAGIC} {VERSION} {self.peer_id}\n".encode("utf-8"))
            self._fh.flush()

    def _incr(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.incr(name, amount)

    # -- LogSink ----------------------------------------------------------

    def on_append(self, entry: LogEntry) -> None:
        self._live.append(entry)
        self._last_seq = max(self._last_seq, entry.seq)
        self._incr("wal_appends")
        self._incr("wal_bytes", entry_bytes(entry))
        self._appends_since_ckpt += 1
        if self.batch_size <= 1:
            self._write_frame("E", entry_to_xml(entry))
            self.last_durable_seq = max(self.last_durable_seq, entry.seq)
            self._maybe_rollover()
            self._maybe_checkpoint()
            return
        self._pending.append(("E", entry_to_xml(entry)))
        self._pending_entries.append(entry)
        if len(self._pending) >= self.batch_size:
            self.flush()
        elif self._timer is not None:
            self._timer.arm(self.flush_interval)

    def on_truncate(self, txn_id: str) -> None:
        # Barrier: a tombstone must never reach disk before the entries
        # it settles, so any buffered batch flushes first.
        if self._flush_pending():
            self._incr("wal_batch_flushes")
        self._write_frame("T", txn_id)
        self._live = [e for e in self._live if e.txn_id != txn_id]
        self._incr("wal_tombstones")
        self._maybe_rollover()
        self._maybe_checkpoint()

    # -- group commit ------------------------------------------------------

    def flush(self) -> int:
        """Write the buffered batch as one multi-frame write; returns
        how many frames were flushed (0 = nothing pending).  This is the
        ``flush_on_prepare`` barrier peers call before message sends."""
        wrote = self._flush_pending()
        if wrote:
            self._incr("wal_batch_flushes")
            self._maybe_rollover()
            self._maybe_checkpoint()
        return wrote

    def _flush_pending(self) -> int:
        if not self._pending:
            return 0
        if self._fh is None:
            raise RuntimeError("DurableWal is closed")
        chunks: List[bytes] = []
        for kind, payload in self._pending:
            data = payload.encode("utf-8")
            chunks.append(f"{kind} {len(data)}\n".encode("ascii"))
            chunks.append(data)
            chunks.append(b"\n")
        self._fh.write(b"".join(chunks))
        self._fh.flush()
        wrote = len(self._pending)
        self._segment_frames += wrote
        if self._pending_entries:
            self.last_durable_seq = max(
                self.last_durable_seq,
                max(e.seq for e in self._pending_entries),
            )
        self._pending.clear()
        self._pending_entries.clear()
        if self._timer is not None:
            self._timer.cancel()
        return wrote

    def pending_entries(self) -> List[LogEntry]:
        """Buffered-but-unflushed entries (read-only view)."""
        return list(self._pending_entries)

    def discard_unflushed(self) -> List[LogEntry]:
        """Crash path: drop the buffered batch *without* writing it.

        Returns the discarded entries so the caller can undo their
        document effects — with write-ahead batching, an effect whose
        log entry never reached disk must not survive the crash either
        (the restarted peer could not compensate it).
        """
        dropped = list(self._pending_entries)
        self._pending.clear()
        self._pending_entries.clear()
        if self._timer is not None:
            self._timer.cancel()
        if dropped:
            lost = {e.seq for e in dropped}
            self._live = [e for e in self._live if e.seq not in lost]
            self._incr("wal_unflushed_discarded", len(dropped))
        return dropped

    # -- framing ----------------------------------------------------------

    def _write_frame(self, kind: str, payload: str) -> None:
        if self._fh is None:
            raise RuntimeError("DurableWal is closed")
        data = payload.encode("utf-8")
        self._fh.write(f"{kind} {len(data)}\n".encode("ascii"))
        self._fh.write(data)
        self._fh.write(b"\n")
        self._fh.flush()
        self._segment_frames += 1

    def _maybe_rollover(self) -> None:
        if self.checkpoint_every > 0:
            # Checkpoints subsume rollover compaction; an interleaved
            # compaction could drop a tombstone the checkpoint-plus-tail
            # merge still needs to suppress a checkpointed entry.
            return
        if self._segment_frames < self.segment_max_frames:
            return
        old_paths = self._segment_paths()
        self._fh.close()
        self._open_segment(self._segment_index + 1)
        for entry in self._live:
            self._write_frame("E", entry_to_xml(entry))
        new_path = os.path.join(
            self.directory, self._segment_name(self._segment_index)
        )
        for path in old_paths:
            if path != new_path:
                os.unlink(path)
        self._incr("wal_compactions")

    # -- checkpoints -------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        if self.checkpoint_every <= 0:
            return
        if self._appends_since_ckpt >= self.checkpoint_every:
            self.take_checkpoint()

    def take_checkpoint(self) -> Optional[Checkpoint]:
        """Publish a checkpoint now and start a fresh tail segment.

        Flushes any buffered batch first (a checkpoint covers only what
        is durable), then writes documents + the live entry set through
        :class:`~repro.txn.checkpoint.CheckpointStore` (atomic publish,
        trailing checksum).  Retention deletes the segments covered by
        the *previous* checkpoint and retires checkpoints older than it,
        keeping exactly two generations on disk.
        """
        if self._ckpt_store is None:
            return None
        if self._flush_pending():
            self._incr("wal_batch_flushes")
        documents = (
            dict(self._document_source())
            if self._document_source is not None else {}
        )
        self._fh.close()
        self._open_segment(self._segment_index + 1)
        checkpoint = Checkpoint(
            index=self._ckpt_index + 1,
            last_seq=self._last_seq,
            tail_segment=self._segment_index,
            documents=documents,
            entries=sorted(self._live, key=lambda e: e.seq),
        )
        self._ckpt_store.write(checkpoint)
        for path in self._segment_paths():
            if self._segment_index_of(path) < self._prev_tail:
                os.unlink(path)
        self._ckpt_store.retire(checkpoint.index - 1)
        self._ckpt_index = checkpoint.index
        self._prev_tail = checkpoint.tail_segment
        self._appends_since_ckpt = 0
        self._incr("checkpoints")
        self._incr("checkpoint_bytes", checkpoint.logical_bytes())
        return checkpoint

    # -- scanning ---------------------------------------------------------

    def load(self, include_pending: bool = False) -> WalScan:
        """Read-only scan: durable live entries, sorted by seq.

        With checkpointing, bases the merge on the newest valid
        checkpoint and replays only segments at or past its
        ``tail_segment`` watermark (torn checkpoint files are skipped,
        falling back to the previous generation).  Tail tombstones apply
        to checkpointed entries too.  ``include_pending`` overlays the
        buffered-but-unflushed batch — what the WAL *would* recover if
        the batch were flushed — which is how the oracle accounts for
        the group-commit window without mutating anything.
        """
        by_seq: Dict[int, LogEntry] = {}
        checkpoint: Optional[Checkpoint] = None
        ckpt_torn = 0
        if self._ckpt_store is not None:
            checkpoint, ckpt_torn = self._ckpt_store.load_latest()
        if checkpoint is not None:
            for entry in checkpoint.entries:
                by_seq[entry.seq] = entry
        floor = checkpoint.tail_segment if checkpoint is not None else 0
        torn = False
        frames = 0
        replayed = 0
        for path in self._segment_paths():
            if self._segment_index_of(path) < floor:
                continue
            seg_frames, seg_torn, seg_entries = self._scan_segment(
                path, by_seq
            )
            frames += seg_frames
            torn = torn or seg_torn
            replayed += seg_entries
        if include_pending:
            for entry in self._pending_entries:
                by_seq[entry.seq] = entry
        live = [e for _, e in sorted(by_seq.items())]
        return WalScan(
            entries=live,
            torn=torn,
            frames=frames,
            replayed=replayed,
            checkpoint_index=checkpoint.index if checkpoint is not None else 0,
            checkpoint_torn=ckpt_torn,
            documents=dict(checkpoint.documents) if checkpoint is not None else {},
        )

    def _scan_segment(self, path, by_seq):
        """Scan one segment into *by_seq*.

        Tombstones apply **in stream order**: a ``T`` frame suppresses
        only the entries written before it.  A transaction that aborts
        (tombstone) and is then *retried on the same peer* appends fresh
        entries after the tombstone — they are live, and a set-based
        "dead txn id" scan would wrongly drop them (losing the retry's
        share at restart).

        Returns ``(good_frames, torn, entry_frames)``; as a side effect
        records the byte offset of the durable prefix in
        ``self._good_offsets``.
        """
        with open(path, "rb") as fh:
            blob = fh.read()
        newline = blob.find(b"\n")
        header_ok = newline >= 0 and blob[:newline].decode(
            "utf-8", "replace"
        ).startswith(f"{MAGIC} {VERSION}")
        if not header_ok:
            self._good_offsets[path] = 0
            return 0, True, 0
        pos = newline + 1
        good = pos
        frames = 0
        entry_frames = 0
        torn = False
        last_seq = 0
        while pos < len(blob):
            frame = self._read_frame(blob, pos)
            if frame is None:
                torn = True
                break
            kind, payload, pos = frame
            if kind == "E":
                try:
                    entry = entry_from_xml(payload)
                except Exception:
                    torn = True
                    break
                if entry.seq <= last_seq:
                    # Seq regression: a stale tail from before a crash.
                    torn = True
                    break
                last_seq = entry.seq
                by_seq[entry.seq] = entry
                entry_frames += 1
            elif kind == "T":
                for seq in [
                    s for s, e in by_seq.items() if e.txn_id == payload
                ]:
                    del by_seq[seq]
            else:
                torn = True
                break
            good = pos
            frames += 1
        self._good_offsets[path] = good
        return frames, torn, entry_frames

    @staticmethod
    def _read_frame(blob: bytes, pos: int):
        newline = blob.find(b"\n", pos)
        if newline < 0:
            return None
        header = blob[pos:newline].decode("utf-8", "replace").split(" ")
        if len(header) != 2 or header[0] not in ("E", "T"):
            return None
        try:
            length = int(header[1])
        except ValueError:
            return None
        start = newline + 1
        end = start + length
        if end + 1 > len(blob) or blob[end:end + 1] != b"\n":
            return None
        return header[0], blob[start:end].decode("utf-8"), end + 1

    # -- restart ----------------------------------------------------------

    def reload(self) -> List[LogEntry]:
        """Restart path: recover from checkpoint + tail (or a full scan
        without checkpoints), discard any torn tail, and compact the
        durable live entries into a fresh segment.  Returns the live
        entries (sorted by seq) for the peer to rebuild its log from;
        the full scan — including recovered document snapshots — stays
        available as :attr:`last_recovery`.

        Always starting a new segment (rather than appending to the old
        tail) keeps the within-segment seq-monotonicity invariant even
        when the restarted peer's seq counter restarts below the old
        tail's highest seq.  Checkpoint files are dropped after the
        compaction (their watermarks point at deleted segments); the
        index keeps counting monotonically.
        """
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._good_offsets = {}
        # A reload models a restart: the buffered batch is volatile.
        self._pending.clear()
        self._pending_entries.clear()
        if self._timer is not None:
            self._timer.cancel()
        scan = self.load()
        if scan.torn:
            self._incr("wal_torn_tails")
        if scan.checkpoint_torn:
            self._incr("checkpoints_torn", scan.checkpoint_torn)
        self._incr("recovery_replay_entries", scan.replayed)
        self._live = list(scan.entries)
        self._last_seq = max(
            [e.seq for e in self._live], default=self._last_seq
        )
        self.last_durable_seq = max(
            [e.seq for e in self._live], default=0
        )
        if self._ckpt_store is not None:
            self._ckpt_index = max(
                self._ckpt_index, self._ckpt_store.latest_index()
            )
            self._ckpt_store.delete_all()
        self._prev_tail = 0
        self._appends_since_ckpt = 0
        old_paths = self._segment_paths()
        last_index = (
            self._segment_index_of(old_paths[-1]) if old_paths else 0
        )
        self._open_segment(last_index + 1)
        for entry in self._live:
            self._write_frame("E", entry_to_xml(entry))
        new_path = os.path.join(
            self.directory, self._segment_name(self._segment_index)
        )
        for path in old_paths:
            if path != new_path:
                os.unlink(path)
        self._incr("wal_reloads")
        self.last_recovery = scan
        return list(self._live)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            # Graceful shutdown persists the buffered batch (a crash
            # goes through discard_unflushed instead).
            self._flush_pending()
            self._fh.close()
            self._fh = None
        if self._timer is not None:
            self._timer.cancel()

    def __enter__(self) -> "DurableWal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
