"""Crash-durable write-ahead log for the §3.1 operation log.

The paper's operation log exists so a *recovering* peer can construct
compensations after a failure, which only works if the log outlives the
process.  :class:`DurableWal` is an incremental append-only on-disk WAL
that a peer attaches to its in-memory :class:`~repro.txn.wal.OperationLog`
via the :class:`~repro.txn.wal.LogSink` hook: every appended
:class:`~repro.txn.wal.LogEntry` is streamed to disk *at append time* as
a self-delimiting frame (the entry's own XML encoding, see
:func:`repro.txn.wal.entry_to_xml`), and every commit/abort-time
``truncate`` is recorded as a tombstone frame.

Segment format (``wal-000001.seg``, ``wal-000002.seg``, …)::

    AXMLWAL 1 <peer_id>\\n          header line
    E <payload-bytes>\\n<xml>\\n     one log entry (entry_to_xml text)
    T <payload-bytes>\\n<txn-id>\\n  tombstone: txn's entries truncated

Torn-tail rule: a scan reads frames in order and stops at the first
frame whose header is malformed, whose payload is shorter than its
declared length, or whose entry ``seq`` is not strictly greater than the
previous entry's in the same segment.  Everything before that point is
the durable prefix; the tail is discarded (and physically truncated by
:meth:`reload`, the restart path).  Because a frame is only appended
after the in-memory log accepted the entry, the durable prefix is always
a consistent prefix of what the peer had applied.

Tombstones are compacted at segment rollover: once
``segment_max_frames`` frames accumulate, the still-live entries are
rewritten into a fresh segment and older segments are deleted, so
committed transactions stop occupying disk.  A crash between writing the
new segment and deleting the old one is safe — a scan merges segments by
``seq`` (later occurrences win) and re-applies tombstones.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.txn.wal import LogEntry, entry_bytes, entry_from_xml, entry_to_xml

MAGIC = "AXMLWAL"
VERSION = 1


@dataclass
class WalScan:
    """Result of a read-only pass over the WAL directory."""

    entries: List[LogEntry] = field(default_factory=list)
    #: True when a torn tail (incomplete or seq-regressing frame) was
    #: detected and discarded during the scan.
    torn: bool = False
    #: Frames (entries + tombstones) read from the durable prefix.
    frames: int = 0


class DurableWal:
    """Append-only segmented WAL for one peer (a :class:`LogSink`).

    ``metrics`` (a :class:`repro.sim.metrics.MetricsCollector`) receives
    ``wal_appends`` / ``wal_bytes`` / ``wal_tombstones`` /
    ``wal_compactions`` counters.  ``wal_bytes`` counts *logical*
    payload bytes (:func:`repro.txn.wal.entry_bytes`), not frame
    lengths — frame lengths embed process-global serials and would make
    summaries non-deterministic.
    """

    def __init__(
        self,
        directory: str,
        peer_id: str = "",
        metrics=None,
        segment_max_frames: int = 256,
    ):
        if segment_max_frames < 2:
            raise ValueError("segment_max_frames must be >= 2")
        self.directory = directory
        self.peer_id = peer_id
        self.metrics = metrics
        self.segment_max_frames = segment_max_frames
        os.makedirs(directory, exist_ok=True)
        #: Mirror of the live (not-yet-truncated) entries, for rollover.
        self._live: List[LogEntry] = []
        #: Per-segment byte offset of the durable prefix (set by scans).
        self._good_offsets: Dict[str, int] = {}
        self._fh = None
        self._segment_index = 0
        self._segment_frames = 0
        existing = self._segment_paths()
        if existing:
            # Adopt an existing directory (restart): scan + truncate tail.
            self.reload()
        else:
            self._open_segment(1)

    # -- paths ------------------------------------------------------------

    def _segment_name(self, index: int) -> str:
        return f"wal-{index:06d}.seg"

    def _segment_paths(self) -> List[str]:
        try:
            names = sorted(
                n for n in os.listdir(self.directory)
                if n.startswith("wal-") and n.endswith(".seg")
            )
        except FileNotFoundError:
            return []
        return [os.path.join(self.directory, n) for n in names]

    def _open_segment(self, index: int) -> None:
        self._segment_index = index
        self._segment_frames = 0
        path = os.path.join(self.directory, self._segment_name(index))
        self._fh = open(path, "ab")
        if self._fh.tell() == 0:
            self._fh.write(f"{MAGIC} {VERSION} {self.peer_id}\n".encode("utf-8"))
            self._fh.flush()

    def _incr(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.incr(name, amount)

    # -- LogSink ----------------------------------------------------------

    def on_append(self, entry: LogEntry) -> None:
        self._write_frame("E", entry_to_xml(entry))
        self._live.append(entry)
        self._incr("wal_appends")
        self._incr("wal_bytes", entry_bytes(entry))
        self._maybe_rollover()

    def on_truncate(self, txn_id: str) -> None:
        self._write_frame("T", txn_id)
        self._live = [e for e in self._live if e.txn_id != txn_id]
        self._incr("wal_tombstones")
        self._maybe_rollover()

    # -- framing ----------------------------------------------------------

    def _write_frame(self, kind: str, payload: str) -> None:
        if self._fh is None:
            raise RuntimeError("DurableWal is closed")
        data = payload.encode("utf-8")
        self._fh.write(f"{kind} {len(data)}\n".encode("ascii"))
        self._fh.write(data)
        self._fh.write(b"\n")
        self._fh.flush()
        self._segment_frames += 1

    def _maybe_rollover(self) -> None:
        if self._segment_frames < self.segment_max_frames:
            return
        old_paths = self._segment_paths()
        self._fh.close()
        self._open_segment(self._segment_index + 1)
        for entry in self._live:
            self._write_frame("E", entry_to_xml(entry))
        new_path = os.path.join(
            self.directory, self._segment_name(self._segment_index)
        )
        for path in old_paths:
            if path != new_path:
                os.unlink(path)
        self._incr("wal_compactions")

    # -- scanning ---------------------------------------------------------

    def load(self) -> WalScan:
        """Read-only scan: durable live entries, sorted by seq.

        Merges all segments (later occurrence of a seq wins), applies
        tombstones, and discards any torn tail without modifying disk.
        """
        by_seq: Dict[int, LogEntry] = {}
        tombstoned: Set[str] = set()
        torn = False
        frames = 0
        for path in self._segment_paths():
            seg_frames, seg_torn = self._scan_segment(path, by_seq, tombstoned)
            frames += seg_frames
            torn = torn or seg_torn
        live = [
            e for _, e in sorted(by_seq.items())
            if e.txn_id not in tombstoned
        ]
        return WalScan(entries=live, torn=torn, frames=frames)

    def _scan_segment(self, path, by_seq, tombstoned):
        """Scan one segment into *by_seq*/*tombstoned*.

        Returns ``(good_frames, torn)``; as a side effect records the
        byte offset of the durable prefix in ``self._good_offsets``.
        """
        with open(path, "rb") as fh:
            blob = fh.read()
        newline = blob.find(b"\n")
        header_ok = newline >= 0 and blob[:newline].decode(
            "utf-8", "replace"
        ).startswith(f"{MAGIC} {VERSION}")
        if not header_ok:
            self._good_offsets[path] = 0
            return 0, True
        pos = newline + 1
        good = pos
        frames = 0
        torn = False
        last_seq = 0
        while pos < len(blob):
            frame = self._read_frame(blob, pos)
            if frame is None:
                torn = True
                break
            kind, payload, pos = frame
            if kind == "E":
                try:
                    entry = entry_from_xml(payload)
                except Exception:
                    torn = True
                    break
                if entry.seq <= last_seq:
                    # Seq regression: a stale tail from before a crash.
                    torn = True
                    break
                last_seq = entry.seq
                by_seq[entry.seq] = entry
            elif kind == "T":
                tombstoned.add(payload)
            else:
                torn = True
                break
            good = pos
            frames += 1
        self._good_offsets[path] = good
        return frames, torn

    @staticmethod
    def _read_frame(blob: bytes, pos: int):
        newline = blob.find(b"\n", pos)
        if newline < 0:
            return None
        header = blob[pos:newline].decode("utf-8", "replace").split(" ")
        if len(header) != 2 or header[0] not in ("E", "T"):
            return None
        try:
            length = int(header[1])
        except ValueError:
            return None
        start = newline + 1
        end = start + length
        if end + 1 > len(blob) or blob[end:end + 1] != b"\n":
            return None
        return header[0], blob[start:end].decode("utf-8"), end + 1

    # -- restart ----------------------------------------------------------

    def reload(self) -> List[LogEntry]:
        """Restart path: scan, discard any torn tail, and compact the
        durable live entries into a fresh segment.  Returns the live
        entries (sorted by seq) for the peer to rebuild its log from.

        Always starting a new segment (rather than appending to the old
        tail) keeps the within-segment seq-monotonicity invariant even
        when the restarted peer's seq counter restarts below the old
        tail's highest seq.
        """
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._good_offsets = {}
        scan = self.load()
        if scan.torn:
            self._incr("wal_torn_tails")
        self._live = list(scan.entries)
        old_paths = self._segment_paths()
        last_index = (
            int(os.path.basename(old_paths[-1])[4:-4]) if old_paths else 0
        )
        self._open_segment(last_index + 1)
        for entry in self._live:
            self._write_frame("E", entry_to_xml(entry))
        new_path = os.path.join(
            self.directory, self._segment_name(self._segment_index)
        )
        for path in old_paths:
            if path != new_path:
                os.unlink(path)
        self._incr("wal_reloads")
        return list(self._live)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "DurableWal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
