"""Transactional operation wrappers.

A :class:`TransactionalOperation` binds an update/query action to a
transaction, executes it against a document (driving lazy
materialization for queries), logs it, and can construct its own
compensation — the unit the recovery protocols reason about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.axml.document import AXMLDocument
from repro.axml.materialize import (
    MaterializationEngine,
    MaterializationReport,
    Resolver,
)
from repro.query.ast import ActionType, UpdateAction
from repro.query.evaluate import QueryResult, evaluate_select
from repro.query.update import ChangeRecord, UpdateResult, apply_action
from repro.txn.compensation import CompensationPlan
from repro.txn.wal import LogEntry, OperationLog
from repro.xmlstore.path import TraversalMeter


@dataclass
class OperationOutcome:
    """What executing one transactional operation produced."""

    action: UpdateAction
    update_result: Optional[UpdateResult] = None
    query_result: Optional[QueryResult] = None
    materialization: Optional[MaterializationReport] = None
    log_entry: Optional[LogEntry] = None
    nodes_affected: int = 0

    def change_records(self) -> List[ChangeRecord]:
        """Every tree change: update records plus materialization records."""
        records: List[ChangeRecord] = []
        if self.materialization is not None:
            records.extend(self.materialization.change_records())
        if self.update_result is not None:
            records.extend(self.update_result.records)
        return records


class TransactionalOperation:
    """One operation of a transactional unit, ready to execute.

    ``evaluation`` selects lazy (default, §3.1's preferred mode) or eager
    materialization for queries.
    """

    def __init__(
        self,
        txn_id: str,
        action: UpdateAction,
        evaluation: str = "lazy",
    ):
        if evaluation not in ("lazy", "eager"):
            raise ValueError(f"evaluation must be lazy or eager, not {evaluation!r}")
        self.txn_id = txn_id
        self.action = action
        self.evaluation = evaluation

    def execute(
        self,
        axml_document: AXMLDocument,
        resolver: Optional[Resolver],
        log: OperationLog,
        meter: Optional[TraversalMeter] = None,
        timestamp: float = 0.0,
    ) -> OperationOutcome:
        """Execute against *axml_document*, log, and return the outcome.

        Queries first materialize the embedded calls they need (lazy) or
        all calls (eager) through *resolver*; the materialization's
        change records are what make the query compensatable.  A
        ``resolver=None`` query skips materialization (a purely local
        read over already-materialized data).
        """
        meter = meter or TraversalMeter()
        outcome = OperationOutcome(self.action)
        document = axml_document.document
        if self.action.action_type is ActionType.QUERY:
            if resolver is not None:
                engine = MaterializationEngine(axml_document, resolver, meter)
                if self.evaluation == "lazy":
                    outcome.materialization = engine.materialize_for_query(
                        self.action.location
                    )
                else:
                    outcome.materialization = engine.materialize_all()
            outcome.query_result = evaluate_select(
                self.action.location, document, meter
            )
        else:
            outcome.update_result = apply_action(document, self.action, meter)
        outcome.nodes_affected = meter.nodes_traversed
        records = outcome.change_records()
        outcome.log_entry = log.append(
            txn_id=self.txn_id,
            kind=self.action.action_type.value
            if self.action.action_type is ActionType.QUERY
            else "update",
            document_name=axml_document.name,
            action_xml=self.action.to_xml(),
            records=records,
            timestamp=timestamp,
        )
        return outcome

    def __repr__(self) -> str:
        return f"TransactionalOperation({self.txn_id}, {self.action.action_type.value})"


def build_compensation(
    log: OperationLog, txn_id: str, ordered: bool = True
) -> List[CompensationPlan]:
    """Construct the full compensation of a transaction from the log.

    Returns one plan per touched document, each holding the compensating
    actions of that document's entries in reverse execution order.  Plans
    are returned most-recently-touched document first, so executing them
    in list order preserves global reverse order across documents.
    """
    return build_compensation_for_entries(log.undo_entries(txn_id), ordered)


def build_compensation_for_entries(
    undo_entries, ordered: bool = True
) -> List[CompensationPlan]:
    """Compensation plans for an explicit entry list (newest first).

    The subset variant of :func:`build_compensation`: partial backward
    recovery compensates only one invocation's tail of a transaction's
    log, not the whole transaction.
    """
    plans: List[CompensationPlan] = []
    by_document = {}
    for entry in undo_entries:
        if not entry.records:
            continue
        plan = by_document.get(entry.document_name)
        if plan is None:
            plan = CompensationPlan(entry.document_name)
            by_document[entry.document_name] = plan
            plans.append(plan)
        plan.extend_from_records(entry.records, ordered)
    return plans
