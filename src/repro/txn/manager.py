"""The per-peer transaction manager.

"The transaction context, managed by the transaction manager, is a data
structure which encapsulates the transaction id with all the information
required for concurrency control, commit and recovery" (§3.2).  The
manager owns the peer's operation log and transaction contexts, executes
operations under a transaction, and performs the peer's share of
compensation when a transaction aborts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.axml.document import AXMLDocument
from repro.axml.materialize import Resolver
from repro.errors import TransactionError
from repro.query.ast import UpdateAction
from repro.query.update import ChangeRecord
from repro.txn.compensation import CompensationPlan
from repro.txn.operations import (
    OperationOutcome,
    TransactionalOperation,
    build_compensation,
    build_compensation_for_entries,
)
from repro.txn.transaction import Transaction, TransactionContext, TransactionState
from repro.txn.wal import OperationLog
from repro.xmlstore.path import TraversalMeter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import SpanCollector
    from repro.txn.occ import OptimisticValidator

#: Callable resolving a document name to the hosted AXML document.
DocumentProvider = Callable[[str], AXMLDocument]


class TransactionManager:
    """Transaction bookkeeping and local recovery for one peer."""

    def __init__(
        self,
        peer_id: str,
        document_provider: DocumentProvider,
        ordered_compensation: bool = True,
        validator: Optional["OptimisticValidator"] = None,
    ):
        self.peer_id = peer_id
        self.log = OperationLog(peer_id)
        self.contexts: Dict[str, TransactionContext] = {}
        self._document_provider = document_provider
        self.ordered_compensation = ordered_compensation
        #: Optional optimistic concurrency control (see repro.txn.occ):
        #: when set, executions are tracked and commit validates; a
        #: conflict aborts-and-compensates, then raises.
        self.validator = validator
        #: Total nodes traversed by compensation at this peer (§3.2 cost).
        self.compensation_cost = 0
        #: Optional observability sink (see :meth:`bind_observability`).
        self.spans: Optional["SpanCollector"] = None

    def bind_observability(self, spans: "SpanCollector") -> None:
        """Emit compensation/recovery spans into *spans* from now on.

        The owning peer binds its network's collector here so every
        compensation run shows up in the transaction's span tree.
        """
        self.spans = spans

    def _span(self, name: str, txn_id: str, **attrs: str):
        """A compensation-step span, or a no-op when unbound."""
        if self.spans is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.spans.span(
            name, "compensation", peer=self.peer_id, txn_id=txn_id, **attrs
        )

    # -- context lifecycle ---------------------------------------------------

    def begin(
        self,
        transaction: Transaction,
        parent_peer: Optional[str] = None,
        service_name: Optional[str] = None,
    ) -> TransactionContext:
        """Create (or return) this peer's context for *transaction*.

        A participant whose previous context finished (aborted during
        nested recovery) gets a *fresh* context: the parent's retry (§3.2
        forward recovery) is a new attempt, not a resurrection — the old
        attempt's effects were already compensated.
        """
        existing = self.contexts.get(transaction.txn_id)
        if existing is not None:
            if existing.is_finished and parent_peer is not None:
                del self.contexts[transaction.txn_id]
            else:
                return existing
        context = TransactionContext(
            transaction, self.peer_id, parent_peer, service_name
        )
        self.contexts[transaction.txn_id] = context
        if self.validator is not None:
            self.validator.begin(transaction.txn_id)
        return context

    def context(self, txn_id: str) -> TransactionContext:
        try:
            return self.contexts[txn_id]
        except KeyError:
            raise TransactionError(
                f"peer {self.peer_id!r} has no context for transaction {txn_id!r}"
            )

    def has_context(self, txn_id: str) -> bool:
        return txn_id in self.contexts

    # -- operation execution ------------------------------------------------------

    def execute(
        self,
        txn_id: str,
        action: UpdateAction,
        document_name: str,
        resolver: Optional[Resolver] = None,
        evaluation: str = "lazy",
        timestamp: float = 0.0,
    ) -> OperationOutcome:
        """Execute one operation under the transaction and log it."""
        context = self.context(txn_id)
        context.require_active()
        axml_document = self._document_provider(document_name)
        operation = TransactionalOperation(txn_id, action, evaluation)
        outcome = operation.execute(
            axml_document, resolver, self.log, timestamp=timestamp
        )
        if outcome.log_entry is not None:
            context.log_seqs.append(outcome.log_entry.seq)
        if self.validator is not None:
            from repro.txn.occ import read_ids, written_ids

            if outcome.query_result is not None:
                self.validator.track_reads(txn_id, read_ids(outcome.query_result))
            records = outcome.change_records()
            if records:
                self.validator.track_writes(txn_id, written_ids(records))
        return outcome

    def record_service_changes(
        self,
        txn_id: str,
        document_name: str,
        action_xml: str,
        records: Sequence[ChangeRecord],
        timestamp: float = 0.0,
    ) -> None:
        """Log changes made by a service executed for a remote invoker."""
        context = self.context(txn_id)
        context.require_active()
        entry = self.log.append(
            txn_id=txn_id,
            kind="service",
            document_name=document_name,
            action_xml=action_xml,
            records=records,
            timestamp=timestamp,
        )
        context.log_seqs.append(entry.seq)

    # -- commit / abort ---------------------------------------------------------------

    def commit_local(self, txn_id: str) -> None:
        """Commit this peer's share: log entries are no longer needed.

        A context already aborted stays aborted: this happens when the
        origin absorbed a participant's fault (forward recovery) and
        committed the rest — the faulted participant's share was already
        compensated, which is exactly the absorb semantics.
        """
        context = self.context(txn_id)
        if context.is_finished:
            return
        if self.validator is not None:
            from repro.txn.occ import ValidationConflict

            try:
                self.validator.validate_and_commit(txn_id)
            except ValidationConflict:
                # First-committer-wins: the loser aborts, compensation
                # removes its writes, and the conflict surfaces.
                self.abort_local(txn_id)
                raise
        context.transition(TransactionState.COMMITTED)
        self.log.truncate(txn_id)

    def abort_local(self, txn_id: str, meter: Optional[TraversalMeter] = None) -> int:
        """Backward recovery of this peer's share: compensate from the log.

        Returns the number of compensating actions executed.  Idempotent:
        an already-aborted context compensates nothing.
        """
        context = self.context(txn_id)
        if context.is_finished:
            return 0
        if self.validator is not None:
            self.validator.abort(txn_id)
        context.transition(TransactionState.COMPENSATING)
        meter = meter or TraversalMeter()
        executed = 0
        plans = build_compensation(self.log, txn_id, self.ordered_compensation)
        with self._span(f"compensate:{txn_id}", txn_id, plans=str(len(plans))):
            for plan in plans:
                document = self._document_provider(plan.document_name).document
                plan.execute(document, meter)
                executed += len(plan)
        self.compensation_cost += meter.nodes_traversed
        context.transition(TransactionState.ABORTED)
        self.log.truncate(txn_id)
        return executed

    def abort_invocation_tail(
        self,
        txn_id: str,
        after_seq: int,
        meter: Optional[TraversalMeter] = None,
    ) -> int:
        """Compensate only the entries appended after *after_seq*.

        Partial backward recovery for a peer that holds more than one
        share of the same transaction — a failed-over (or rerouted)
        service co-located with a delegate it invokes.  Aborting the
        whole local share there would destroy the *enclosing*
        invocation's completed work; instead, only the failed
        invocation's tail is undone and dropped from the log, and the
        context stays ACTIVE so a forward-recovery retry can continue.

        The log rewrite is crash-safe: ``truncate`` writes the
        transaction's tombstone and the surviving entries are appended
        again after it, so with the WAL's in-order tombstone semantics a
        restart recovers exactly the surviving share.

        Returns the number of compensating actions executed.
        """
        context = self.context(txn_id)
        if context.is_finished:
            return 0
        entries = self.log.entries_for(txn_id)
        tail = [e for e in entries if e.seq > after_seq]
        if not tail:
            return 0
        survivors = [e for e in entries if e.seq <= after_seq]
        meter = meter or TraversalMeter()
        executed = 0
        plans = build_compensation_for_entries(
            list(reversed(tail)), self.ordered_compensation
        )
        with self._span(
            f"compensate_tail:{txn_id}", txn_id, plans=str(len(plans))
        ):
            for plan in plans:
                document = self._document_provider(plan.document_name).document
                plan.execute(document, meter)
                executed += len(plan)
        self.compensation_cost += meter.nodes_traversed
        self.log.truncate(txn_id)
        context.log_seqs = []
        for entry in survivors:
            replayed = self.log.append(
                txn_id=entry.txn_id,
                kind=entry.kind,
                document_name=entry.document_name,
                action_xml=entry.action_xml,
                records=entry.records,
                timestamp=entry.timestamp,
            )
            context.log_seqs.append(replayed.seq)
        return executed

    def mark_aborted_without_compensation(self, txn_id: str) -> None:
        """Abandon a context without compensating (a *dead* peer's state).

        Used when the peer has disconnected: its modifications become
        unreachable garbage exactly as the paper warns (§3.3's atomicity
        discussion) — unless peer-independent compensation lets someone
        else clean up.
        """
        context = self.context(txn_id)
        if context.is_finished:
            return
        if self.validator is not None:
            self.validator.abort(txn_id)
        if context.state is TransactionState.ACTIVE:
            context.transition(TransactionState.COMPENSATING)
        context.transition(TransactionState.ABORTED)

    # -- peer-independent compensation (§3.2) --------------------------------------

    def build_compensation_xml(
        self, txn_id: str, records: Sequence[ChangeRecord], document_name: str
    ) -> str:
        """The compensating-service definition for one service execution.

        "A peer APY, processing the invocation of a service S, also
        returns the definition of the compensating service CS_SY of S
        along with the invocation results."
        """
        plan = CompensationPlan(document_name)
        plan.extend_from_records(records, self.ordered_compensation)
        return plan.to_xml()

    def apply_compensation_xml(
        self, plan_xml: str, meter: Optional[TraversalMeter] = None
    ) -> int:
        """Execute a received compensating-service definition locally.

        "The original peers do not even need to be aware that the
        services they are executing are, basically, compensating
        services" — this entry point takes the plan as opaque XML.
        """
        plan = CompensationPlan.from_xml(plan_xml)
        document = self._document_provider(plan.document_name).document
        meter = meter or TraversalMeter()
        with self._span(
            f"apply_compensation:{plan.document_name}", "", actions=str(len(plan))
        ):
            plan.execute(document, meter)
        self.compensation_cost += meter.nodes_traversed
        return len(plan)

    # -- inspection ------------------------------------------------------------------

    def validator_stats(self) -> Optional[Dict[str, float]]:
        """OCC validation counters, or None when OCC is off."""
        return None if self.validator is None else self.validator.stats()

    def active_transactions(self) -> List[str]:
        return [
            txn_id
            for txn_id, ctx in self.contexts.items()
            if ctx.state is TransactionState.ACTIVE
        ]
