"""Peer-local checkpoints: bounded-replay restart for the durable WAL.

PR 5's recovery replays the *entire* WAL history on restart, so restart
time grows linearly with how much a peer logged.  A checkpoint bounds
it: every ``checkpoint_every`` appended entries the
:class:`~repro.txn.durable_wal.DurableWal` serializes a consistent
snapshot — each hosted document plus the still-live (uncommitted)
:class:`~repro.txn.wal.LogEntry` set — into one file written
*atomically* next to the WAL segments.  Recovery then loads the newest
valid checkpoint and replays only the segment tail written after it
(``docs/DURABILITY.md`` has the full recovery sequence).

Checkpoint file format (``ckpt-000001.ckpt``)::

    AXMLCKPT 1 <peer_id> <index> <last_seq> <tail_segment>\\n
    D <payload-bytes> <doc-name>\\n<document-xml>\\n    per hosted document
    E <payload-bytes>\\n<entry-xml>\\n                  per live log entry
    C <crc32-of-everything-above>\\n                    trailing checksum

``tail_segment`` is the WAL watermark: segments numbered >= it hold the
entries appended *after* this checkpoint and are the only ones recovery
replays.  ``E`` frames reuse the exact per-entry XML codec of the WAL
itself (:func:`repro.txn.wal.entry_to_xml`), so the two on-disk formats
cannot drift.

Atomicity and torn files
------------------------

A checkpoint is written to a temp file and published with
``os.replace``, so a reader only ever sees complete publishes — *or* a
file torn by a crash mid-publish on filesystems without atomic rename
semantics (which the chaos harness models explicitly with its
``tear_checkpoint`` crash flag).  Validity is all-or-nothing: the
trailing ``C`` checksum must match the CRC-32 of every byte before it,
and nothing may follow it.  A torn file therefore fails validation
deterministically regardless of *where* it was torn — important because
frame lengths embed process-global node-id serials, so a
"prefix-is-usable" rule would make recovery outcomes process-dependent.
Recovery skips invalid files and falls back to the next older
checkpoint (retention keeps the previous one plus every segment it
needs, see :meth:`CheckpointStore.retire`).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.txn.wal import LogEntry, entry_bytes, entry_from_xml, entry_to_xml

CKPT_MAGIC = "AXMLCKPT"
CKPT_VERSION = 1


@dataclass
class Checkpoint:
    """One consistent snapshot: documents + the live WAL entry set."""

    index: int
    #: Highest entry seq ever appended when the checkpoint was taken.
    last_seq: int
    #: First WAL segment index *not* covered: recovery replays segments
    #: numbered >= this watermark on top of the checkpoint.
    tail_segment: int
    #: Document name → serialized XML at checkpoint time.
    documents: Dict[str, str] = field(default_factory=dict)
    #: The live (not-yet-truncated) entries, sorted by seq.
    entries: List[LogEntry] = field(default_factory=list)

    def logical_bytes(self) -> int:
        """Deterministic size accounting (document XML + logical entry
        payload via :func:`entry_bytes` — never raw frame lengths, which
        embed process-global serials)."""
        return sum(len(xml) for xml in self.documents.values()) + sum(
            entry_bytes(e) for e in self.entries
        )


class CheckpointStore:
    """Reads and writes the numbered checkpoint files of one WAL directory."""

    def __init__(self, directory: str, peer_id: str = ""):
        self.directory = directory
        self.peer_id = peer_id

    # -- paths ------------------------------------------------------------

    @staticmethod
    def _name(index: int) -> str:
        return f"ckpt-{index:06d}.ckpt"

    def paths(self) -> List[str]:
        """Checkpoint file paths, oldest first."""
        try:
            names = sorted(
                n for n in os.listdir(self.directory)
                if n.startswith("ckpt-") and n.endswith(".ckpt")
            )
        except FileNotFoundError:
            return []
        return [os.path.join(self.directory, n) for n in names]

    @staticmethod
    def _index_of(path: str) -> int:
        return int(os.path.basename(path)[5:-5])

    def latest_index(self) -> int:
        """Highest checkpoint index on disk (valid or not); 0 when none."""
        paths = self.paths()
        return self._index_of(paths[-1]) if paths else 0

    # -- writing ----------------------------------------------------------

    def write(self, checkpoint: Checkpoint) -> str:
        """Atomically publish *checkpoint*; returns the final path."""
        parts: List[bytes] = [
            f"{CKPT_MAGIC} {CKPT_VERSION} {self.peer_id} "
            f"{checkpoint.index} {checkpoint.last_seq} "
            f"{checkpoint.tail_segment}\n".encode("utf-8")
        ]
        for name in sorted(checkpoint.documents):
            payload = checkpoint.documents[name].encode("utf-8")
            parts.append(f"D {len(payload)} {name}\n".encode("utf-8"))
            parts.append(payload + b"\n")
        for entry in sorted(checkpoint.entries, key=lambda e: e.seq):
            payload = entry_to_xml(entry).encode("utf-8")
            parts.append(f"E {len(payload)}\n".encode("ascii"))
            parts.append(payload + b"\n")
        body = b"".join(parts)
        blob = body + f"C {zlib.crc32(body) & 0xFFFFFFFF:08x}\n".encode("ascii")
        final = os.path.join(self.directory, self._name(checkpoint.index))
        tmp = final + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
        os.replace(tmp, final)
        return final

    # -- reading ----------------------------------------------------------

    def load_latest(self) -> Tuple[Optional[Checkpoint], int]:
        """The newest *valid* checkpoint, skipping torn files.

        Returns ``(checkpoint, torn_count)`` — *torn_count* is how many
        newer files failed validation and were skipped (0 on the happy
        path).  Read-only: torn files are left in place so a replayed
        run sees the identical directory.
        """
        torn = 0
        for path in reversed(self.paths()):
            checkpoint = self._parse(path)
            if checkpoint is not None:
                return checkpoint, torn
            torn += 1
        return None, torn

    def _parse(self, path: str) -> Optional[Checkpoint]:
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        # Trailing checksum line: all-or-nothing validity.
        tail = blob.rfind(b"\nC ")
        if tail < 0 or not blob.endswith(b"\n"):
            return None
        body, check_line = blob[: tail + 1], blob[tail + 1:]
        expected = f"C {zlib.crc32(body) & 0xFFFFFFFF:08x}\n".encode("ascii")
        if check_line != expected:
            return None
        newline = body.find(b"\n")
        if newline < 0:
            return None
        header = body[:newline].decode("utf-8", "replace").split(" ")
        if len(header) != 6 or header[0] != CKPT_MAGIC:
            return None
        try:
            version = int(header[1])
            index, last_seq, tail_segment = (
                int(header[3]), int(header[4]), int(header[5])
            )
        except ValueError:
            return None
        if version != CKPT_VERSION:
            return None
        checkpoint = Checkpoint(
            index=index, last_seq=last_seq, tail_segment=tail_segment
        )
        pos = newline + 1
        try:
            while pos < len(body):
                line_end = body.find(b"\n", pos)
                if line_end < 0:
                    return None
                fields = body[pos:line_end].decode("utf-8").split(" ")
                kind = fields[0]
                length = int(fields[1])
                start = line_end + 1
                end = start + length
                if end + 1 > len(body) or body[end:end + 1] != b"\n":
                    return None
                payload = body[start:end].decode("utf-8")
                if kind == "D" and len(fields) == 3:
                    checkpoint.documents[fields[2]] = payload
                elif kind == "E" and len(fields) == 2:
                    checkpoint.entries.append(entry_from_xml(payload))
                else:
                    return None
                pos = end + 1
        except (ValueError, IndexError, KeyError):
            return None
        checkpoint.entries.sort(key=lambda e: e.seq)
        return checkpoint

    # -- retention --------------------------------------------------------

    def retire(self, keep_from_index: int) -> List[str]:
        """Delete checkpoints older than *keep_from_index*; returns what
        was removed.  Called after a successful publish with the
        *previous* checkpoint's index, so exactly two generations remain
        — the fallback generation covers a torn newest file."""
        removed = []
        for path in self.paths():
            if self._index_of(path) < keep_from_index:
                os.unlink(path)
                removed.append(path)
        return removed

    def delete_all(self) -> None:
        """Drop every checkpoint (restart compaction starts fresh)."""
        for path in self.paths():
            os.unlink(path)

    # -- chaos hooks ------------------------------------------------------

    def tear_newest(self) -> Optional[str]:
        """Truncate the newest checkpoint file mid-write (chaos model of
        a crash landing inside the publish).  Deterministic: cuts the
        file to half its byte length.  Returns the torn path, or None
        when there is nothing to tear."""
        paths = self.paths()
        if not paths:
            return None
        path = paths[-1]
        size = os.path.getsize(path)
        with open(path, "rb+") as fh:
            fh.truncate(size // 2)
        return path
