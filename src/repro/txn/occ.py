"""Optimistic concurrency control over compensable transactions.

The paper defers isolation ("the transaction context … encapsulates …
all the information required for concurrency control") and its
conclusion calls for studying the *interplay* between the ACID
properties.  This module supplies the natural companion to a
compensation-based framework: **backward-validation OCC**.

Rationale: §2 dismisses lock-based protocols because AXML documents are
active (reads materialize) and transactions are long ("in hours") —
holding locks is untenable.  Compensation already gives us cheap aborts,
which is exactly what an optimistic scheme needs.  Transactions execute
without blocking, tracking what they read and wrote (by stable node id);
at commit, a transaction validates against the write sets of
transactions that committed during its lifetime.  A conflict aborts the
younger transaction — compensation cleans up its writes.

The validator is per-repository and deliberately simple: node-id level
granularity, first-committer-wins.  Phantom protection relies on
writers touching the *parent* of inserted/deleted nodes (which our
change records expose), so a reader of an element conflicts with
concurrent child insertion/deletion under it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import TransactionError
from repro.query.evaluate import QueryResult
from repro.query.update import ChangeRecord, DeleteRecord, InsertRecord, ReplaceRecord
from repro.xmlstore.nodes import NodeId


class ValidationConflict(TransactionError):
    """Commit-time validation failed: the transaction must abort."""

    def __init__(self, txn_id: str, conflicting_txn: str, node_id: NodeId):
        super().__init__(
            f"{txn_id} read {node_id!r}, which {conflicting_txn} wrote "
            "after this transaction started"
        )
        self.conflicting_txn = conflicting_txn
        self.node_id = node_id


def written_ids(records: Iterable[ChangeRecord]) -> Set[NodeId]:
    """The node ids a record sequence writes — including parents, so
    structural changes conflict with readers of the surrounding element."""
    out: Set[NodeId] = set()
    for record in records:
        if isinstance(record, InsertRecord):
            out.add(record.node_id)
            out.add(record.parent_id)
        elif isinstance(record, DeleteRecord):
            out.add(record.node_id)
            out.add(record.parent_id)
        elif isinstance(record, ReplaceRecord):
            out.update(written_ids([record.deleted]))
            out.update(written_ids(record.inserted))
    return out


def read_ids(result: QueryResult) -> Set[NodeId]:
    """The node ids a query result depends on: every binding element and
    every selected node."""
    out: Set[NodeId] = set()
    for binding in result.bindings:
        out.add(binding.context.node_id)
        for node in binding.nodes():
            out.add(node.node_id)
    return out


@dataclass
class _TxnFootprint:
    txn_id: str
    start_tick: int
    reads: Set[NodeId] = field(default_factory=set)
    writes: Set[NodeId] = field(default_factory=set)


@dataclass
class _CommittedWrite:
    txn_id: str
    commit_tick: int
    writes: Set[NodeId]


class OptimisticValidator:
    """Backward-validation OCC for one repository (peer).

    Usage::

        validator = OptimisticValidator()
        validator.begin(txn_id)
        validator.track_reads(txn_id, read_ids(query_result))
        validator.track_writes(txn_id, written_ids(outcome.change_records()))
        validator.validate_and_commit(txn_id)   # raises ValidationConflict
        # on conflict: abort + compensate, then optionally retry

    Ticks are a logical counter, not wall time, so validation is
    deterministic and independent of the simulation clock.
    """

    def __init__(self, history_limit: int = 1000):
        self._tick = 0
        self._active: Dict[str, _TxnFootprint] = {}
        self._committed: List[_CommittedWrite] = []
        self._history_limit = history_limit
        self.validations = 0
        self.conflicts = 0

    # -- lifecycle ---------------------------------------------------------

    def begin(self, txn_id: str) -> None:
        if txn_id in self._active:
            raise TransactionError(f"{txn_id} already began validation tracking")
        self._tick += 1
        self._active[txn_id] = _TxnFootprint(txn_id, self._tick)

    def track_reads(self, txn_id: str, node_ids: Iterable[NodeId]) -> None:
        self._footprint(txn_id).reads.update(node_ids)

    def track_writes(self, txn_id: str, node_ids: Iterable[NodeId]) -> None:
        footprint = self._footprint(txn_id)
        footprint.writes.update(node_ids)
        # Writes are implicit reads (read-modify-write).
        footprint.reads.update(node_ids)

    def validate_and_commit(self, txn_id: str) -> None:
        """Backward validation: fail on read/write overlap with any
        transaction that committed after this one began."""
        footprint = self._footprint(txn_id)
        self.validations += 1
        for committed in self._committed:
            if committed.commit_tick <= footprint.start_tick:
                continue
            overlap = footprint.reads & committed.writes
            if overlap:
                self.conflicts += 1
                del self._active[txn_id]
                raise ValidationConflict(
                    txn_id, committed.txn_id, next(iter(overlap))
                )
        self._tick += 1
        if footprint.writes:
            self._committed.append(
                _CommittedWrite(txn_id, self._tick, set(footprint.writes))
            )
            if len(self._committed) > self._history_limit:
                self._committed = self._committed[-self._history_limit :]
        del self._active[txn_id]

    def abort(self, txn_id: str) -> None:
        """Drop tracking for an aborted transaction (no history entry)."""
        self._active.pop(txn_id, None)

    # -- introspection --------------------------------------------------------

    def active_transactions(self) -> List[str]:
        return list(self._active)

    def footprint_sizes(self, txn_id: str) -> Tuple[int, int]:
        footprint = self._footprint(txn_id)
        return len(footprint.reads), len(footprint.writes)

    def _footprint(self, txn_id: str) -> _TxnFootprint:
        try:
            return self._active[txn_id]
        except KeyError:
            raise TransactionError(
                f"{txn_id} is not tracked; call begin() first"
            )

    @property
    def conflict_rate(self) -> float:
        return self.conflicts / self.validations if self.validations else 0.0

    def stats(self) -> Dict[str, float]:
        """Validation counters for reports and benchmark rows."""
        return {
            "validations": self.validations,
            "conflicts": self.conflicts,
            "conflict_rate": self.conflict_rate,
            "active": len(self._active),
            "committed_history": len(self._committed),
        }
