"""Spheres of atomicity (§3.3, after Alonso & Hagen [18]).

"It might not be possible to guarantee atomicity as long as peer
disconnection is possible.  Here, we can use the notions of Spheres of
Atomicity to check if atomicity is guaranteed, e.g., atomicity may still
be guaranteed for a transaction if all the involved peers (for that
transaction) are super peers."

The analysis below is static: given the participant set of a transaction
and the reliability facts about peers (super-peer status, replication),
decide whether atomicity is *guaranteed* — i.e., whether compensation
can always run to completion no matter which ordinary peers disconnect.

A participant is **safe** when

* it is a super peer (never disconnects), or
* every document it modified under the transaction is replicated on at
  least one super peer *and* peer-independent compensation is in use
  (so another peer holds the compensating definitions and can execute
  them against the replica).

Atomicity is guaranteed exactly when every participant that performed
modifications is safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set


@dataclass
class SphereAnalysis:
    """Result of a sphere-of-atomicity check for one transaction."""

    guaranteed: bool
    participants: FrozenSet[str]
    at_risk_peers: FrozenSet[str]
    reasons: Dict[str, str] = field(default_factory=dict)

    def explain(self) -> str:
        if self.guaranteed:
            return "atomicity guaranteed: every modifying participant is safe"
        lines = ["atomicity NOT guaranteed:"]
        for peer in sorted(self.at_risk_peers):
            lines.append(f"  {peer}: {self.reasons.get(peer, 'unsafe')}")
        return "\n".join(lines)


def analyze_sphere(
    participants: Iterable[str],
    super_peers: Iterable[str],
    modifying_peers: Iterable[str] = (),
    replicas_on_super_peers: Mapping[str, bool] = None,
    peer_independent: bool = False,
) -> SphereAnalysis:
    """Check whether a transaction's atomicity is guaranteed.

    ``participants`` — every peer involved in the transaction;
    ``super_peers`` — the trusted peers that never disconnect;
    ``modifying_peers`` — participants that performed modifications
    (defaults to all participants — the conservative assumption);
    ``replicas_on_super_peers`` — per-peer: are all its modified
    documents replicated on some super peer?
    ``peer_independent`` — is peer-independent compensation in use?
    """
    participant_set = frozenset(participants)
    super_set = set(super_peers)
    modifying = set(modifying_peers) or set(participant_set)
    replicas = dict(replicas_on_super_peers or {})

    at_risk: Set[str] = set()
    reasons: Dict[str, str] = {}
    for peer in modifying:
        if peer in super_set:
            continue
        if peer_independent and replicas.get(peer, False):
            # Another peer holds the compensating definitions and a super
            # peer holds a replica to run them against.
            continue
        at_risk.add(peer)
        if not peer_independent and replicas.get(peer, False):
            reasons[peer] = (
                "replicated on a super peer, but compensation is "
                "peer-dependent: only this peer can compensate"
            )
        elif peer_independent:
            reasons[peer] = (
                "ordinary peer without a super-peer replica: disconnection "
                "strands its modifications"
            )
        else:
            reasons[peer] = (
                "ordinary peer: its disconnection makes compensation of its "
                "modifications impossible"
            )
    return SphereAnalysis(
        guaranteed=not at_risk,
        participants=participant_set,
        at_risk_peers=frozenset(at_risk),
        reasons=reasons,
    )


def sphere_guarantee_rate(
    transactions: Sequence[Sequence[str]],
    super_peers: Iterable[str],
    peer_independent: bool = False,
    replicas_on_super_peers: Mapping[str, bool] = None,
) -> float:
    """Fraction of transactions with guaranteed atomicity (experiment E6)."""
    if not transactions:
        return 1.0
    guaranteed = 0
    for participants in transactions:
        analysis = analyze_sphere(
            participants,
            super_peers,
            peer_independent=peer_independent,
            replicas_on_super_peers=replicas_on_super_peers,
        )
        if analysis.guaranteed:
            guaranteed += 1
    return guaranteed / len(transactions)
