"""Transactions and per-peer transaction contexts (§3.2).

"On submission of a transaction T_A at a peer AP1 (its origin peer), the
peer creates a transaction context TC_A1.  The transaction context,
managed by the transaction manager, is a data structure which
encapsulates the transaction id with all the information required for
concurrency control, commit and recovery of the corresponding
transaction."

One :class:`Transaction` value identifies the global unit; each
participant peer holds its own :class:`TransactionContext` with the
local log span, the services it invoked on other peers, received
compensating-service definitions (peer-independent mode) and the active
peer chain (§3.3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import TransactionStateError

_txn_counter = itertools.count(1)


class TransactionState(enum.Enum):
    """Lifecycle of a transaction (context)."""

    ACTIVE = "active"
    COMMITTED = "committed"
    COMPENSATING = "compensating"
    ABORTED = "aborted"


#: Legal state transitions.
_TRANSITIONS = {
    TransactionState.ACTIVE: {
        TransactionState.COMMITTED,
        TransactionState.COMPENSATING,
        TransactionState.ABORTED,
    },
    TransactionState.COMPENSATING: {TransactionState.ABORTED},
    TransactionState.COMMITTED: set(),
    TransactionState.ABORTED: set(),
}


@dataclass(frozen=True)
class Transaction:
    """A global transactional unit: "a set of update/query operations"."""

    txn_id: str
    origin_peer: str

    @classmethod
    def begin(cls, origin_peer: str) -> "Transaction":
        return cls(f"T{next(_txn_counter)}", origin_peer)

    def __str__(self) -> str:
        return self.txn_id


@dataclass
class InvocationEdge:
    """One remote invocation made while processing the transaction.

    The recovery protocol (§3.2) propagates "Abort T" messages both to
    "the peers whose services it had invoked" (these edges) and to "the
    peer which had invoked the service" (``TransactionContext.parent_peer``).
    """

    target_peer: str
    method_name: str
    completed: bool = False
    failed: bool = False


class TransactionContext:
    """Per-peer state of one transaction (the paper's ``TC_Ax``)."""

    def __init__(
        self,
        transaction: Transaction,
        peer_id: str,
        parent_peer: Optional[str] = None,
        service_name: Optional[str] = None,
    ):
        self.transaction = transaction
        self.peer_id = peer_id
        #: The peer that invoked a service on us as part of this
        #: transaction (None at the origin peer).
        self.parent_peer = parent_peer
        #: The service we are executing for the parent (None at origin).
        self.service_name = service_name
        self.state = TransactionState.ACTIVE
        #: Outgoing invocations, in execution order.
        self.invocations: List[InvocationEdge] = []
        #: Log sequence numbers of this context's entries in the peer WAL.
        self.log_seqs: List[int] = []
        #: Compensating-service definitions received from providers
        #: (peer-independent compensation, §3.2): provider peer →
        #: serialized CompensationPlan XML, in receipt order.
        self.received_compensations: List[tuple] = []
        #: The active-peer chain as known to this peer (§3.3).
        self.chain_text: str = ""

    @property
    def txn_id(self) -> str:
        return self.transaction.txn_id

    @property
    def is_origin(self) -> bool:
        return self.parent_peer is None

    # -- state machine ----------------------------------------------------

    def transition(self, new_state: TransactionState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise TransactionStateError(
                f"{self.txn_id}@{self.peer_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def require_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionStateError(
                f"{self.txn_id}@{self.peer_id} is {self.state.value}, not active"
            )

    @property
    def is_finished(self) -> bool:
        return self.state in (TransactionState.COMMITTED, TransactionState.ABORTED)

    # -- bookkeeping ---------------------------------------------------------

    def record_invocation(self, target_peer: str, method_name: str) -> InvocationEdge:
        edge = InvocationEdge(target_peer, method_name)
        self.invocations.append(edge)
        return edge

    def invoked_peers(self) -> List[str]:
        """Distinct peers whose services this context invoked, in order."""
        seen: Set[str] = set()
        out: List[str] = []
        for edge in self.invocations:
            if edge.target_peer not in seen:
                seen.add(edge.target_peer)
                out.append(edge.target_peer)
        return out

    def record_compensation_definition(self, provider_peer: str, plan_xml: str) -> None:
        self.received_compensations.append((provider_peer, plan_xml))

    def __repr__(self) -> str:
        return (
            f"TransactionContext({self.txn_id}@{self.peer_id}, "
            f"state={self.state.value}, invoked={self.invoked_peers()})"
        )
