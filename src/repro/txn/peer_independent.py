"""Peer-independent compensation (§3.2), as a reusable recovery driver.

"Let us assume that a peer APY, processing the invocation of a service
S, also returns the definition of the compensating service CS_SY of S
along with the invocation results. … Given this, a peer trying to
perform recovery (say, the origin peer APX) can directly invoke the
compensating services (CS_SY) on their original peers (APY).  The
original peers do not even need to be aware that the services they are
executing are, basically, compensating services.  The intuition is to
free the original peers from the burden of compensation as much as
possible."

:class:`AXMLPeer` applies this automatically during origin aborts; this
module exposes the same machinery to *any* peer holding the definitions
(e.g. a super peer that received them because the origin also died),
plus inspection helpers for tests and experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.p2p.messages import CompensationRequest
from repro.p2p.network import SimNetwork
from repro.txn.compensation import CompensationPlan


@dataclass
class CompensationLedger:
    """Collected compensating-service definitions of one transaction.

    Entries are ``(provider_peer, plan_xml)`` in *forward* receipt order;
    recovery dispatches them newest-first (reverse order of the forward
    operations, §3.1).
    """

    txn_id: str
    entries: List[Tuple[str, str]] = field(default_factory=list)

    def add(self, provider_peer: str, plan_xml: str) -> None:
        self.entries.append((provider_peer, plan_xml))

    def providers(self) -> List[str]:
        seen = set()
        out: List[str] = []
        for provider, _ in self.entries:
            if provider not in seen:
                seen.add(provider)
                out.append(provider)
        return out

    def documents(self) -> List[str]:
        out: List[str] = []
        for _, plan_xml in self.entries:
            name = CompensationPlan.from_xml(plan_xml).document_name
            if name not in out:
                out.append(name)
        return out

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class RecoveryOutcome:
    """Result of dispatching a ledger."""

    dispatched: int = 0
    via_replica: int = 0
    failed: int = 0

    @property
    def complete(self) -> bool:
        return self.failed == 0


def dispatch_ledger(
    network: SimNetwork,
    recovering_peer: str,
    ledger: CompensationLedger,
) -> RecoveryOutcome:
    """Invoke every compensating definition on its original peer.

    Falls back to a replica holder of the plan's document when the
    original provider is disconnected (the replication manager must be
    attached to the network).  Dead-end definitions are counted as
    failures — the atomicity gap the spheres analysis predicts.
    """
    outcome = RecoveryOutcome()
    replication = getattr(network, "replication", None)
    for provider, plan_xml in reversed(ledger.entries):
        message = CompensationRequest(ledger.txn_id, plan_xml, recovering_peer)
        if network.notify(recovering_peer, provider, message):
            outcome.dispatched += 1
            continue
        delivered = False
        if replication is not None:
            document_name = CompensationPlan.from_xml(plan_xml).document_name
            for holder in replication.holders(document_name):
                if holder != provider and network.notify(
                    recovering_peer, holder, message
                ):
                    outcome.dispatched += 1
                    outcome.via_replica += 1
                    network.metrics.incr("compensations_via_replica")
                    delivered = True
                    break
        if not delivered:
            outcome.failed += 1
            network.metrics.incr("compensation_failures")
    return outcome


def ledger_from_context(context) -> CompensationLedger:
    """Build a ledger from a transaction context's received definitions."""
    ledger = CompensationLedger(context.txn_id)
    for provider, plan_xml in context.received_compensations:
        ledger.add(provider, plan_xml)
    return ledger
