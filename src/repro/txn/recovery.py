"""The nested recovery protocol (§3.2) — caller-side decisions.

When an invocation fails (a named service fault, or the callee's
disconnection), the invoking peer stands at the paper's fork:

* **forward recovery** — handle the fault with the application-specific
  handlers defined for the embedded service call: retry (possibly on a
  replicated peer), absorb, or run an application hook.  The paper
  prefers forward recovery: "undo only as much as required".
* **backward recovery** — no matching handler: abort the local context,
  send "Abort T" to the peers whose services this peer invoked, and
  propagate the failure to the parent.

This module implements the decision and the forward attempts; the
backward propagation is driven by :class:`repro.p2p.peer.AXMLPeer`,
which owns the network edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.axml.faults import FaultHandler
from repro.errors import PeerDisconnected, ReproError, ServiceFault

#: The synthetic fault name under which a callee's disconnection is
#: matched against handlers (so a policy can say "on disconnection,
#: retry on the replica").
DISCONNECT_FAULT = "PeerDisconnected"


@dataclass
class FaultPolicy:
    """A caller-side fault policy for one remote method.

    The in-memory equivalent of the ``axml:catch``/``axml:retry``
    handlers attached to an embedded service call.  ``fault_names=None``
    is catchAll.
    """

    fault_names: Optional[Set[str]] = None
    retry_times: int = 0
    retry_wait: float = 0.0
    #: Retry against this replicated peer instead of the original (§3.2:
    #: "retrying the invocation using a replicated peer").
    alternative_peer: str = ""
    #: Swallow the fault and continue with no results.
    absorb: bool = False
    #: Application hook: params → result fragments (or None = unhandled).
    hook: Optional[Callable[[Dict[str, str]], Optional[List[str]]]] = None

    def matches(self, fault_name: str) -> bool:
        return self.fault_names is None or fault_name in self.fault_names

    @classmethod
    def from_handler(cls, handler: FaultHandler) -> "FaultPolicy":
        """Adapt a parsed ``axml:catch`` handler to a policy."""
        names = None if handler.is_catch_all else {handler.fault_name}
        if handler.retry is not None:
            alternative = ""
            if handler.retry.alternative is not None:
                url = handler.retry.alternative.attributes.get("serviceURL", "")
                if url.startswith("axml://"):
                    alternative = url[len("axml://") :]
            return cls(
                fault_names=names,
                retry_times=handler.retry.times,
                retry_wait=handler.retry.wait,
                alternative_peer=alternative,
            )
        return cls(fault_names=names, absorb=handler.hook_name is None)


@dataclass
class RecoveryDecision:
    """Outcome of the caller-side recovery attempt."""

    handled: bool
    fragments: List[str] = field(default_factory=list)
    retries_used: int = 0
    used_alternative: bool = False
    #: Which replica actually served the retry (empty when the original
    #: target did, or when the attempt was absorbed/hooked).
    alternative_used: str = ""

    @classmethod
    def unhandled(cls) -> "RecoveryDecision":
        return cls(handled=False)


#: Signature of the re-invocation callable the peer supplies:
#: (target_peer, method, params) → fragments; raises on failure.
Reinvoker = Callable[[str, str, Dict[str, str]], List[str]]


def fault_name_of(exc: ReproError) -> str:
    """The handler-matchable name of a failure."""
    if isinstance(exc, ServiceFault):
        return exc.fault_name
    if isinstance(exc, PeerDisconnected):
        return DISCONNECT_FAULT
    return type(exc).__name__


def select_policy(
    policies: Sequence[FaultPolicy], fault_name: str
) -> Optional[FaultPolicy]:
    """First specific match wins; catchAll policies match last (§3.2's
    catch-then-catchAll order)."""
    for policy in policies:
        if policy.fault_names is not None and policy.matches(fault_name):
            return policy
    for policy in policies:
        if policy.fault_names is None:
            return policy
    return None


def attempt_forward_recovery(
    policy: FaultPolicy,
    target_peer: str,
    method_name: str,
    params: Dict[str, str],
    reinvoke: Reinvoker,
    wait: Callable[[float], None],
    original_target_alive: Callable[[], bool],
    select_alternative: Optional[Callable[[], Optional[str]]] = None,
) -> RecoveryDecision:
    """Run one policy's forward-recovery attempt.

    Retries go to the original peer while it is alive, then (or when the
    policy names one) to the alternative replica peer.  A policy's
    explicit ``alternative_peer`` wins; otherwise *select_alternative*
    (when given) is consulted **per retry** — it is how the replication
    layer offers "the most-caught-up live replica right now", so a
    second retry after the first replica also died can land on a third
    peer (double failover).  The selector is only called when the retry
    would actually go to a replica, because selection promotes the
    chosen replica to primary.  Exhausted retries and failed hooks
    return ``unhandled`` — the caller falls back to backward recovery.
    """
    if policy.hook is not None:
        fragments = policy.hook(params)
        if fragments is not None:
            return RecoveryDecision(handled=True, fragments=list(fragments))
        return RecoveryDecision.unhandled()
    if policy.absorb:
        return RecoveryDecision(handled=True)
    retries = 0
    while retries < policy.retry_times:
        retries += 1
        alive = original_target_alive()
        alternative = ""
        if not alive or retries > 1:
            alternative = policy.alternative_peer
            if not alternative and select_alternative is not None:
                alternative = select_alternative() or ""
        use_alternative = bool(alternative)
        if not use_alternative and not alive:
            # Original is gone and no replica: no retry can succeed —
            # don't burn (simulated) wait time on doomed attempts.
            break
        if policy.retry_wait > 0:
            wait(policy.retry_wait)
        attempt_target = alternative if use_alternative else target_peer
        try:
            fragments = reinvoke(attempt_target, method_name, params)
            return RecoveryDecision(
                handled=True,
                fragments=fragments,
                retries_used=retries,
                used_alternative=use_alternative,
                alternative_used=attempt_target if use_alternative else "",
            )
        except (ServiceFault, PeerDisconnected):
            continue
    return RecoveryDecision.unhandled()
