"""A from-scratch XML parser producing :mod:`repro.xmlstore.nodes` trees.

The parser is a hand-written single-pass recursive-descent parser over a
character cursor.  It supports the XML subset the paper's documents use:

* the ``<?xml … ?>`` prolog (ignored),
* elements with prefixed names and single/double-quoted attributes,
* character data with the five predefined entities plus ``&#NNN;`` /
  ``&#xHHH;`` character references,
* comments ``<!-- … -->`` and CDATA sections,
* processing instructions (skipped).

It does *not* implement DTDs — the paper never uses them and they would
add no transactional behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import XmlParseError
from repro.xmlstore.names import is_valid_name
from repro.xmlstore.nodes import Document, Element, Text

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_WHITESPACE = " \t\r\n"


class _Cursor:
    """Character cursor with line/column tracking for error messages."""

    __slots__ = ("text", "pos", "line", "column")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, length: int = 1) -> str:
        return self.text[self.pos : self.pos + length]

    def advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + count]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return chunk

    def expect(self, token: str) -> None:
        if not self.text.startswith(token, self.pos):
            raise XmlParseError(
                f"expected {token!r}, found {self.peek(len(token))!r}",
                self.line,
                self.column,
            )
        self.advance(len(token))

    def skip_whitespace(self) -> None:
        while not self.at_end() and self.text[self.pos] in _WHITESPACE:
            self.advance()

    def take_until(self, token: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise XmlParseError(
                f"unterminated construct: expected {token!r}", self.line, self.column
            )
        chunk = self.text[self.pos : end]
        self.advance(end - self.pos)
        return chunk

    def error(self, message: str) -> XmlParseError:
        return XmlParseError(message, self.line, self.column)


def _decode_entities(raw: str, cursor: _Cursor) -> str:
    """Expand entity and character references in *raw*."""
    if "&" not in raw:
        return raw
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise cursor.error("unterminated entity reference")
        name = raw[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                out.append(chr(int(name[2:], 16)))
            except ValueError:
                raise cursor.error(f"bad character reference &{name};")
        elif name.startswith("#"):
            try:
                out.append(chr(int(name[1:])))
            except ValueError:
                raise cursor.error(f"bad character reference &{name};")
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise cursor.error(f"unknown entity &{name};")
        i = end + 1
    return "".join(out)


def _parse_name(cursor: _Cursor) -> str:
    start = cursor.pos
    while not cursor.at_end() and cursor.text[cursor.pos] not in " \t\r\n=/><'\"":
        cursor.advance()
    name = cursor.text[start : cursor.pos]
    if not is_valid_name(name.replace(":", "_", 1) if ":" in name else name):
        raise cursor.error(f"invalid XML name {name!r}")
    return name


def _parse_attributes(cursor: _Cursor) -> Dict[str, str]:
    attributes: Dict[str, str] = {}
    while True:
        cursor.skip_whitespace()
        nxt = cursor.peek()
        if nxt in (">", "/", "?") or cursor.at_end():
            return attributes
        name = _parse_name(cursor)
        cursor.skip_whitespace()
        cursor.expect("=")
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise cursor.error("attribute value must be quoted")
        cursor.advance()
        value = cursor.take_until(quote)
        cursor.advance()  # closing quote
        if name in attributes:
            raise cursor.error(f"duplicate attribute {name!r}")
        attributes[name] = _decode_entities(value, cursor)


def _skip_misc(cursor: _Cursor) -> None:
    """Skip whitespace, comments, PIs and the prolog between elements."""
    while True:
        cursor.skip_whitespace()
        if cursor.peek(4) == "<!--":
            cursor.advance(4)
            cursor.take_until("-->")
            cursor.advance(3)
        elif cursor.peek(2) == "<?":
            cursor.advance(2)
            cursor.take_until("?>")
            cursor.advance(2)
        elif cursor.peek(9) == "<!DOCTYPE":
            # Tolerate (and skip) a simple internal-subset-free DOCTYPE.
            cursor.take_until(">")
            cursor.advance(1)
        else:
            return


def _parse_element(cursor: _Cursor, document: Document, parent: Optional[Element]) -> Element:
    cursor.expect("<")
    name = _parse_name(cursor)
    attributes = _parse_attributes(cursor)
    if parent is None:
        element = document.create_root(name)
        element.attributes.update(attributes)
    else:
        element = parent.new_element(name, attributes)
    cursor.skip_whitespace()
    if cursor.peek(2) == "/>":
        cursor.advance(2)
        return element
    cursor.expect(">")
    _parse_content(cursor, document, element)
    cursor.expect("</")
    closing = _parse_name(cursor)
    if closing != name:
        raise cursor.error(f"mismatched closing tag </{closing}> for <{name}>")
    cursor.skip_whitespace()
    cursor.expect(">")
    return element


def _parse_content(cursor: _Cursor, document: Document, parent: Element) -> None:
    buffer: List[str] = []

    def flush_text() -> None:
        if buffer:
            text = _decode_entities("".join(buffer), cursor)
            if text.strip():
                parent.new_text(text.strip())
            buffer.clear()

    while True:
        if cursor.at_end():
            raise cursor.error(f"unexpected end of input inside <{parent.name.text}>")
        if cursor.peek(2) == "</":
            flush_text()
            return
        if cursor.peek(4) == "<!--":
            flush_text()
            cursor.advance(4)
            cursor.take_until("-->")
            cursor.advance(3)
        elif cursor.peek(9) == "<![CDATA[":
            # CDATA content is literal: no entity decoding.
            flush_text()
            cursor.advance(9)
            raw = cursor.take_until("]]>")
            cursor.advance(3)
            if raw.strip():
                parent.new_text(raw.strip())
        elif cursor.peek(2) == "<?":
            flush_text()
            cursor.advance(2)
            cursor.take_until("?>")
            cursor.advance(2)
        elif cursor.peek() == "<":
            flush_text()
            _parse_element(cursor, document, parent)
        else:
            buffer.append(cursor.advance())


def parse_document(text: str, name: str = "") -> Document:
    """Parse a complete XML document string into a :class:`Document`.

    Raises :class:`~repro.errors.XmlParseError` with line/column
    information on malformed input.
    """
    cursor = _Cursor(text)
    document = Document(name)
    _skip_misc(cursor)
    if cursor.at_end():
        raise cursor.error("document contains no root element")
    _parse_element(cursor, document, None)
    _skip_misc(cursor)
    if not cursor.at_end():
        raise cursor.error("content after the root element")
    return document


def parse_fragment(text: str, document: Document) -> List[Element]:
    """Parse one or more sibling elements into detached nodes of *document*.

    Used for ``<data>`` payloads of update actions and for service
    results: the fragment's elements are owned by *document* but not yet
    attached anywhere.
    """
    cursor = _Cursor(text)
    holder = document.create_element("__fragment__")
    _skip_misc(cursor)
    while not cursor.at_end():
        _parse_element(cursor, document, holder)
        _skip_misc(cursor)
    elements = holder.child_elements()
    for element in list(holder.children):
        element.detach()
    return elements
