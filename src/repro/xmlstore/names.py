"""Qualified names and the ``axml:`` namespace.

The paper embeds service calls as ``<axml:sc …>`` elements.  We model tag
names as :class:`QName` values with an optional prefix; the ``axml`` prefix
is reserved and recognized by the AXML engine (:mod:`repro.axml`).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Namespace URI used for ActiveXML constructs.
AXML_NS = "http://activexml.net/ns"

#: The reserved prefix for AXML constructs.
AXML_PREFIX = "axml"

_NAME_START = set("_:") | set(chr(c) for c in range(ord("a"), ord("z") + 1))
_NAME_START |= set(chr(c) for c in range(ord("A"), ord("Z") + 1))
_NAME_CHARS = _NAME_START | set("-.0123456789")


def is_valid_name(name: str) -> bool:
    """Return ``True`` if *name* is a well-formed XML name.

    This intentionally implements the ASCII subset of the XML Name
    production — enough for the paper's documents and for our workload
    generators, while staying dependency-free.
    """
    if not name:
        return False
    if name[0] not in _NAME_START:
        return False
    return all(ch in _NAME_CHARS for ch in name[1:])


@dataclass(frozen=True)
class QName:
    """A qualified XML name: an optional prefix plus a local name.

    ``QName.parse("axml:sc")`` → ``QName(prefix="axml", local="sc")``.
    Instances are immutable and hashable so they can key dictionaries.
    """

    local: str
    prefix: str = ""

    @classmethod
    def parse(cls, text: str) -> "QName":
        """Parse ``prefix:local`` or plain ``local`` into a QName."""
        if ":" in text:
            prefix, _, local = text.partition(":")
            if not prefix or not local:
                raise ValueError(f"malformed qualified name: {text!r}")
            return cls(local=local, prefix=prefix)
        return cls(local=text)

    @property
    def text(self) -> str:
        """The serialized form (``prefix:local`` or ``local``)."""
        if self.prefix:
            return f"{self.prefix}:{self.local}"
        return self.local

    @property
    def is_axml(self) -> bool:
        """True when the name lives in the reserved ``axml`` prefix."""
        return self.prefix == AXML_PREFIX

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text


#: QName of the embedded service-call element (paper §1).
SC_NAME = QName("sc", AXML_PREFIX)
#: QName of the parameter-list element.
PARAMS_NAME = QName("params", AXML_PREFIX)
#: QName of a single parameter.
PARAM_NAME = QName("param", AXML_PREFIX)
#: QName of a parameter value.
VALUE_NAME = QName("value", AXML_PREFIX)
#: QName of a fault handler (paper §3.2).
CATCH_NAME = QName("catch", AXML_PREFIX)
#: QName of the catch-all fault handler.
CATCHALL_NAME = QName("catchAll", AXML_PREFIX)
#: QName of the retry construct.
RETRY_NAME = QName("retry", AXML_PREFIX)

#: Local names of the AXML machinery elements that are call *metadata*
#: (params, fault handlers) rather than document content.  Query
#: evaluation and the structural index both prune these subtrees, so the
#: predicate lives here where every layer can share it.
AXML_META_LOCALS = frozenset({"params", "catch", "catchAll", "retry"})


def is_sc_name(name: QName) -> bool:
    """True for ``axml:sc``, the embedded service-call container."""
    return name.prefix == AXML_PREFIX and name.local == "sc"


def is_axml_meta_name(name: QName) -> bool:
    """True for the call-metadata elements (never document content)."""
    return name.prefix == AXML_PREFIX and name.local in AXML_META_LOCALS
