"""Per-document structural indexes over the XML node tree.

The paper's hot paths — ``<location>`` query evaluation (§3.1) and
compensation-log node lookups — all reduce to two access patterns:

* **id access** — "delete the node having the corresponding ID"; the
  :class:`~repro.xmlstore.nodes.Document` node map answers this in O(1);
* **tag access** — descendant steps like ``ATPList//player`` that a
  plain DOM answers by re-walking the subtree on every evaluation.

:class:`StructuralIndex` adds the tag half: a *postings* index from
element local name to the elements carrying it, maintained incrementally
as nodes are created, adopted and vacuumed, plus an epoch-guarded
document-order rank cache used to answer descendant steps without a tree
walk.  ViP2P (PAPERS.md) gets its XML-in-P2P performance from exactly
this move — materialized access structures instead of per-query walks.

Invalidation model
------------------
Postings track *existence* (every element owned by the document, attached
or logically deleted) and are exact at all times.  *Attachment* and
*document order* are resolved through :meth:`order_ranks`: a pre-order
walk of the live tree, pruning ``axml`` metadata subtrees, cached against
the document's mutation epoch.  Any structural mutation (attach, detach,
id adoption, root creation) bumps the epoch; the next indexed query
rebuilds the rank map once and every later query reuses it.  A document
that mutates on every query degrades gracefully to walk cost; a document
queried repeatedly between mutations amortizes the rebuild to ~0.

The module-level switch (:func:`set_index_enabled`,
:func:`index_disabled`) lets benchmarks and invalidation tests compare
indexed answers against fresh full-tree walks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, Mapping

from repro.obs.prof import PROF
from repro.xmlstore.names import is_axml_meta_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xmlstore.nodes import Document, Element, NodeId

_EMPTY: Dict[object, object] = {}

#: Global switch consulted by the query layer; flipped by benchmarks and
#: invalidation tests to force the walk-based reference path.
_ENABLED = True


def index_enabled() -> bool:
    """True when the query layer may consult structural indexes."""
    return _ENABLED


def set_index_enabled(enabled: bool) -> bool:
    """Set the global index switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def index_disabled() -> Iterator[None]:
    """Force walk-based evaluation within the block (bench/test oracle)."""
    previous = set_index_enabled(False)
    try:
        yield
    finally:
        set_index_enabled(previous)


class StructuralIndex:
    """Tag-name postings + epoch-cached document-order ranks for one document."""

    __slots__ = ("_document", "_postings", "_rank_epoch", "_ranks")

    def __init__(self, document: "Document"):
        self._document = document
        #: local name → insertion-ordered {NodeId: Element} postings.
        self._postings: Dict[str, Dict["NodeId", "Element"]] = {}
        self._rank_epoch = -1
        self._ranks: Dict["NodeId", int] = {}

    # -- incremental maintenance (driven by the node layer) -----------------

    def add_element(self, element: "Element") -> None:
        """Register a newly created element under its local name."""
        self._postings.setdefault(element.name.local, {})[element.node_id] = element

    def rekey_element(self, element: "Element", old_id: "NodeId") -> None:
        """Move an element's posting after :meth:`Document._adopt_id`."""
        bucket = self._postings.get(element.name.local)
        if bucket is not None:
            bucket.pop(old_id, None)
            bucket[element.node_id] = element

    def drop_id(self, node_id: "NodeId") -> None:
        """Forget a vacuumed id (the element may be any local name)."""
        for bucket in self._postings.values():
            if bucket.pop(node_id, None) is not None:
                return

    def drop_element(self, element: "Element") -> None:
        """Forget a vacuumed element (cheap path when the node is known)."""
        bucket = self._postings.get(element.name.local)
        if bucket is not None:
            bucket.pop(element.node_id, None)

    def clear(self) -> None:
        """Drop everything; pairs with a wholesale node-map reset
        (snapshot rollback swaps the entire tree out from under us)."""
        self._postings.clear()
        self._ranks = {}
        self._rank_epoch = -1

    # -- queries ------------------------------------------------------------

    def postings(self, local_name: str) -> Mapping["NodeId", "Element"]:
        """Every element of the document (attached or not) with that name."""
        return self._postings.get(local_name, _EMPTY)

    def order_ranks(self) -> Dict["NodeId", int]:
        """Pre-order rank of every *live* element, pruning axml metadata.

        Membership in the returned map is the attachment test: an element
        has a rank iff it is reachable from the root without crossing an
        ``axml:params``/handler subtree — exactly the set a logical
        descendant walk can reach.  Rebuilt lazily when the document's
        mutation epoch moved; reused byte-for-byte otherwise.
        """
        document = self._document
        epoch = document.mutation_epoch
        if epoch == self._rank_epoch:
            return self._ranks
        ranks: Dict["NodeId", int] = {}
        root = document.root
        if root is not None:
            rank = 0
            stack = [root]
            while stack:
                element = stack.pop()
                ranks[element.node_id] = rank
                rank += 1
                for child in reversed(element.children):
                    name = getattr(child, "name", None)
                    if name is not None and not is_axml_meta_name(name):
                        stack.append(child)
        self._ranks = ranks
        self._rank_epoch = epoch
        PROF.incr("index_rank_rebuilds")
        return ranks

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters for reports and tests (sizes, epoch, cache state)."""
        return {
            "tags": len(self._postings),
            "entries": sum(len(bucket) for bucket in self._postings.values()),
            "epoch": self._document.mutation_epoch,
            "rank_cache_epoch": self._rank_epoch,
            "ranked": len(self._ranks),
        }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"StructuralIndex(tags={stats['tags']}, entries={stats['entries']}, "
            f"epoch={stats['epoch']})"
        )
