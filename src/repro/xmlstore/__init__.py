"""From-scratch XML repository substrate.

This package implements the XML storage layer the paper's AXML documents
live in: a mutable ordered tree with stable node identifiers
(:mod:`repro.xmlstore.nodes`), a hand-written parser
(:mod:`repro.xmlstore.parser`), serialization
(:mod:`repro.xmlstore.serializer`), a path engine
(:mod:`repro.xmlstore.path`) and a structural differ
(:mod:`repro.xmlstore.diff`).

Stable node ids matter transactionally: the paper (§3.1) assumes an AXML
insert "returns the (unique) ID of the inserted node" so that its
compensation is "a delete operation to delete the node having the
corresponding ID".
"""

from repro.xmlstore.names import QName, AXML_NS, AXML_PREFIX
from repro.xmlstore.nodes import Document, Element, Text, Node, NodeId
from repro.xmlstore.parser import parse_document, parse_fragment
from repro.xmlstore.serializer import serialize, pretty, canonical, canonical_digest
from repro.xmlstore.fastpath import (
    fast_path_enabled,
    set_fast_path_enabled,
    fast_path_disabled,
)
from repro.xmlstore.path import PathExpr, parse_path
from repro.xmlstore.diff import diff_documents, EditScript, EditOp

__all__ = [
    "QName",
    "AXML_NS",
    "AXML_PREFIX",
    "Document",
    "Element",
    "Text",
    "Node",
    "NodeId",
    "parse_document",
    "parse_fragment",
    "serialize",
    "pretty",
    "canonical",
    "canonical_digest",
    "fast_path_enabled",
    "set_fast_path_enabled",
    "fast_path_disabled",
    "PathExpr",
    "parse_path",
    "diff_documents",
    "EditScript",
    "EditOp",
]
