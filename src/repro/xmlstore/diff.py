"""Structural diff between two versions of a document.

Dynamic compensation (§3.1) normally works from the operation log.  The
differ is the belt-and-braces verification path used by the test-suite
and by experiment E1: apply an operation and its constructed
compensation, then assert the diff against the pre-state is empty (or
contains only acceptable-state deviations).

The diff is *id-based*: both versions are indexed by :class:`NodeId` and
the edit script reports inserts, deletes, text updates, attribute updates
and moves.  This exploits the store's stable ids (clones used for
snapshots preserve ids), which makes the diff exact rather than
heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.xmlstore.nodes import Document, Element, Node, NodeId, Text


@dataclass(frozen=True)
class EditOp:
    """One edit: ``kind`` is ``insert``, ``delete``, ``text``, ``attrs``
    or ``move``.

    * ``insert`` — node ``node_id`` exists only in the new version; its
      parent and index there are recorded.
    * ``delete`` — node exists only in the old version.
    * ``text`` — a text node's value changed (old → new).
    * ``attrs`` — an element's attributes changed (old → new mapping).
    * ``move`` — node exists in both versions but under a different
      parent or index.
    """

    kind: str
    node_id: NodeId
    parent_id: Optional[NodeId] = None
    index: Optional[int] = None
    old: Optional[object] = None
    new: Optional[object] = None

    def __str__(self) -> str:
        return f"{self.kind}({self.node_id!r})"


@dataclass
class EditScript:
    """An ordered collection of :class:`EditOp` values."""

    ops: List[EditOp]

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def is_empty(self) -> bool:
        """True when the two versions are structurally identical."""
        return not self.ops

    def kinds(self) -> List[str]:
        return [op.kind for op in self.ops]

    def by_kind(self, kind: str) -> List[EditOp]:
        return [op for op in self.ops if op.kind == kind]


def _index(document: Document) -> Dict[NodeId, Tuple[Node, Optional[NodeId], int]]:
    """Map attached node id → (node, parent id, index in parent)."""
    table: Dict[NodeId, Tuple[Node, Optional[NodeId], int]] = {}
    if document.root is None:
        return table
    table[document.root.node_id] = (document.root, None, 0)
    for element in document.iter_elements():
        for i, child in enumerate(element.children):
            table[child.node_id] = (child, element.node_id, i)
    return table


def diff_documents(
    old: Document, new: Document, ignore_text_identity: bool = False
) -> EditScript:
    """Compute the id-based edit script transforming *old* into *new*.

    Deletes are emitted deepest-first and inserts shallowest-first so the
    script can be replayed mechanically.  Subtrees inserted or deleted
    wholesale are reported by their root only (children are implied).

    ``ignore_text_identity=True`` suppresses delete/insert pairs caused
    purely by a text node's *id* changing while its parent element kept
    the same text content — compensation restores element identities
    (via persisted ids) but text nodes are recreated fresh.
    """
    old_index = _index(old)
    new_index = _index(new)
    ops: List[EditOp] = []

    deleted_ids = [nid for nid in old_index if nid not in new_index]
    inserted_ids = [nid for nid in new_index if nid not in old_index]
    deleted_set = set(deleted_ids)
    inserted_set = set(inserted_ids)

    # Roots only: skip nodes whose parent is also deleted/inserted.
    for nid in deleted_ids:
        node, parent_id, index = old_index[nid]
        if parent_id in deleted_set:
            continue
        if ignore_text_identity and _is_equivalent_text(
            node, parent_id, old_index, new_index
        ):
            continue
        ops.append(EditOp("delete", nid, parent_id=parent_id, index=index, old=node))
    for nid in inserted_ids:
        node, parent_id, index = new_index[nid]
        if parent_id in inserted_set:
            continue
        if ignore_text_identity and _is_equivalent_text(
            node, parent_id, new_index, old_index
        ):
            continue
        ops.append(EditOp("insert", nid, parent_id=parent_id, index=index, new=node))

    for nid, (old_node, old_parent, old_pos) in old_index.items():
        entry = new_index.get(nid)
        if entry is None:
            continue
        new_node, new_parent, new_pos = entry
        if isinstance(old_node, Text) and isinstance(new_node, Text):
            if old_node.value != new_node.value:
                ops.append(EditOp("text", nid, old=old_node.value, new=new_node.value))
        elif isinstance(old_node, Element) and isinstance(new_node, Element):
            if old_node.attributes != new_node.attributes:
                ops.append(
                    EditOp(
                        "attrs",
                        nid,
                        old=dict(old_node.attributes),
                        new=dict(new_node.attributes),
                    )
                )
        if old_parent != new_parent or _effective_index(
            nid, old_parent, old_pos, deleted_set, old_index
        ) != _effective_index(nid, new_parent, new_pos, inserted_set, new_index):
            if old_parent != new_parent:
                ops.append(
                    EditOp(
                        "move",
                        nid,
                        parent_id=new_parent,
                        index=new_pos,
                        old=(old_parent, old_pos),
                        new=(new_parent, new_pos),
                    )
                )
    return EditScript(ops)


def _is_equivalent_text(
    node: Node,
    parent_id: Optional[NodeId],
    this_index: Dict[NodeId, Tuple[Node, Optional[NodeId], int]],
    other_index: Dict[NodeId, Tuple[Node, Optional[NodeId], int]],
) -> bool:
    """True when *node* is a text node whose parent exists in both
    versions with identical overall text content."""
    if not isinstance(node, Text) or parent_id is None:
        return False
    other_entry = other_index.get(parent_id)
    if other_entry is None:
        return False
    this_parent = this_index[parent_id][0]
    other_parent = other_entry[0]
    return this_parent.text_content() == other_parent.text_content()


def _effective_index(
    node_id: NodeId,
    parent_id: Optional[NodeId],
    position: int,
    changed: set,
    table: Dict[NodeId, Tuple[Node, Optional[NodeId], int]],
) -> int:
    """Index among siblings that exist in *both* versions.

    Pure positional shifts caused by an inserted/deleted earlier sibling
    must not count as moves of the later siblings.
    """
    if parent_id is None:
        return 0
    parent_node = table[parent_id][0]
    assert isinstance(parent_node, Element)
    effective = 0
    for child in parent_node.children[:position]:
        if child.node_id not in changed:
            effective += 1
    return effective
