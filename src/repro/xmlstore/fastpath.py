"""Global switch for the serialization fast path.

The fast path is three related optimizations (see ``docs/PERF.md``,
"Serialization fast path"):

* epoch-cached canonical serialization and digests on
  :class:`~repro.xmlstore.nodes.Document`,
* the structural clone behind :meth:`Document.clone_tree` (replacing
  serialize→parse round trips),
* the memoized per-entry WAL codec
  (:func:`repro.txn.wal.entry_to_xml`).

All three are *semantics-preserving*: with the switch off, every call
recomputes from scratch and every clone takes the historical
serialize→parse route, producing byte-identical observable results.
Benchmarks (``benchmarks/bench_p3_serialization.py``) and the
hypothesis equivalence tests flip the switch to compare the two paths;
it lives in its own module so :mod:`repro.xmlstore.nodes`,
:mod:`repro.xmlstore.serializer` and :mod:`repro.txn.wal` can all
consult it without import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_ENABLED = True


def fast_path_enabled() -> bool:
    """True when cached serialization / structural clone / memoized
    entry codec may be used."""
    return _ENABLED


def set_fast_path_enabled(enabled: bool) -> bool:
    """Set the global fast-path switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def fast_path_disabled() -> Iterator[None]:
    """Force cold serialization and round-trip clones within the block.

    The bench/test oracle: results inside the block are what the system
    computed before the fast path existed, so comparing against them
    proves the caches are invisible.
    """
    previous = set_fast_path_enabled(False)
    try:
        yield
    finally:
        set_fast_path_enabled(previous)
