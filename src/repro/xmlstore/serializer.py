"""Serialization of node trees back to XML text.

Two renderings are provided:

* :func:`serialize` — compact, canonical-ish output: attributes sorted by
  name, entities escaped, no insignificant whitespace.  Round-trips with
  :func:`repro.xmlstore.parser.parse_document` (parse ∘ serialize is the
  identity on the tree, a property the test suite checks with
  hypothesis).
* :func:`pretty` — indented human-readable output for examples and logs.

``include_ids=True`` adds an internal ``repro:id`` attribute so node ids
survive a serialize/parse round trip; the parser side is handled by
:func:`strip_ids` / :func:`rebind_ids`.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Union

from repro.obs.prof import PROF
from repro.xmlstore.fastpath import fast_path_enabled
from repro.xmlstore.nodes import Document, Element, Node, NodeId, Text

#: Attribute used to persist node ids across serialization.
ID_ATTRIBUTE = "repro:id"


def escape_text(value: str) -> str:
    """Escape character data."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted serialization."""
    return escape_text(value).replace('"', "&quot;")


def _open_tag(element: Element, include_ids: bool) -> str:
    parts: List[str] = [element.name.text]
    if include_ids:
        # Only the id-bearing rendering needs a merged copy; the common
        # path sorts the live attribute dict's keys in place.
        attributes = dict(element.attributes)
        attributes[ID_ATTRIBUTE] = repr(element.node_id)
    else:
        attributes = element.attributes
    for key in sorted(attributes):
        parts.append(f'{key}="{escape_attribute(attributes[key])}"')
    return " ".join(parts)


def _serialize_tree(node: Node, out: List[str], include_ids: bool) -> None:
    """Render *node*'s subtree with an explicit stack (no recursion, so
    document depth is bounded by memory rather than the interpreter's
    recursion limit)."""
    stack: List[Union[Node, str]] = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            out.append(item)
            continue
        if isinstance(item, Text):
            out.append(escape_text(item.value))
            continue
        assert isinstance(item, Element)
        tag = _open_tag(item, include_ids)
        if not item.children:
            out.append(f"<{tag}/>")
            continue
        out.append(f"<{tag}>")
        stack.append(f"</{item.name.text}>")
        stack.extend(reversed(item.children))


def _render(
    node: Node, include_ids: bool, declaration: bool, document_level: bool
) -> str:
    if document_level:
        # The quantity the P3 perf gate counts: full-document tree
        # renders actually performed (cache hits never reach here).
        PROF.incr("serialize_tree_builds")
    out: List[str] = []
    if declaration:
        out.append('<?xml version="1.0" encoding="UTF-8"?>')
    _serialize_tree(node, out, include_ids)
    return "".join(out)


def serialize(
    node: Union[Document, Node], include_ids: bool = False, declaration: bool = False
) -> str:
    """Serialize a document or subtree to compact XML text.

    Document-level output is cached on the document, keyed by its
    :attr:`~repro.xmlstore.nodes.Document.content_epoch` and the
    rendering flags; any mutation moves the epoch, so a cached string is
    returned only while the tree is byte-for-byte unchanged.
    """
    if isinstance(node, Document):
        if node.root is None:
            return ""
        if fast_path_enabled():
            key = (include_ids, declaration)
            epoch = node.content_epoch
            cached = node._serialize_cache.get(key)
            if cached is not None and cached[0] == epoch:
                PROF.incr("serialize_cache_hits")
                return cached[1]
            PROF.incr("serialize_cache_misses")
            text = _render(node.root, include_ids, declaration, document_level=True)
            node._serialize_cache[key] = (epoch, text)
            return text
        return _render(node.root, include_ids, declaration, document_level=True)
    return _render(node, include_ids, declaration, document_level=False)


def _pretty_node(node: Node, out: List[str], depth: int, indent: str) -> None:
    pad = indent * depth
    if isinstance(node, Text):
        out.append(f"{pad}{escape_text(node.value)}")
        return
    assert isinstance(node, Element)
    tag = _open_tag(node, include_ids=False)
    if not node.children:
        out.append(f"{pad}<{tag}/>")
        return
    if len(node.children) == 1 and isinstance(node.children[0], Text):
        text = escape_text(node.children[0].value)
        out.append(f"{pad}<{tag}>{text}</{node.name.text}>")
        return
    out.append(f"{pad}<{tag}>")
    for child in node.children:
        _pretty_node(child, out, depth + 1, indent)
    out.append(f"{pad}</{node.name.text}>")


def pretty(node: Union[Document, Node], indent: str = "  ") -> str:
    """Serialize with indentation for human consumption."""
    if isinstance(node, Document):
        if node.root is None:
            return ""
        node = node.root
    out: List[str] = []
    _pretty_node(node, out, 0, indent)
    return "\n".join(out)


def strip_ids(document: Document) -> None:
    """Remove persisted ``repro:id`` attributes from every element."""
    for element in document.iter_elements():
        element.attributes.pop(ID_ATTRIBUTE, None)


def rebind_ids(document: Document) -> int:
    """Re-adopt persisted ``repro:id`` attributes as real node ids.

    Returns the number of elements whose id was rebound.  Elements without
    the attribute keep their freshly allocated ids.
    """
    rebound = 0
    for element in list(document.iter_elements()):
        raw = element.attributes.pop(ID_ATTRIBUTE, None)
        if raw is None:
            continue
        document._adopt_id(element, NodeId.parse(raw))
        rebound += 1
    return rebound


def rebind_element_ids(element: Element, document: Document) -> int:
    """Re-adopt persisted ``repro:id`` attributes within one subtree.

    Fragment-level counterpart of :func:`rebind_ids`, used when a
    compensating insert restores a logged snapshot: the restored nodes
    take back their original identities, so earlier compensations that
    reference them by id still resolve.
    """
    rebound = 0
    for el in list(element.iter_elements()):
        raw = el.attributes.pop(ID_ATTRIBUTE, None)
        if raw is None:
            continue
        document._adopt_id(el, NodeId.parse(raw))
        rebound += 1
    return rebound


def canonical(node: Union[Document, Node]) -> str:
    """Canonical text form used for structural equality in tests.

    Identical trees (same names, attributes, text, order — ignoring node
    ids) produce identical canonical strings.
    """
    return serialize(node, include_ids=False)


def canonical_digest(node: Union[Document, Node]) -> str:
    """SHA-256 hex digest of the canonical text.

    Digest equality *implies* byte-equal canonical text (same order,
    names, attributes, text), so equal digests prove convergence; the
    converse does not hold for order-insensitive comparisons, which must
    fall back to their own canonical form on mismatch (see
    ``chaos/oracle.py``).  Document digests are cached per content
    epoch, so steady-state equality checks cost one integer compare and
    one string compare.
    """
    if isinstance(node, Document) and fast_path_enabled():
        epoch = node.content_epoch
        cached = node._digest_cache
        if cached is not None and cached[0] == epoch:
            PROF.incr("serialize_digest_hits")
            return cached[1]
        PROF.incr("serialize_digest_misses")
        digest = hashlib.sha256(canonical(node).encode("utf-8")).hexdigest()
        node._digest_cache = (epoch, digest)
        return digest
    return hashlib.sha256(canonical(node).encode("utf-8")).hexdigest()


def trees_equal(a: Union[Document, Node], b: Union[Document, Node]) -> bool:
    """Structural equality of two documents/subtrees (ids ignored)."""
    return canonical(a) == canonical(b)
