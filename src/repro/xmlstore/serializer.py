"""Serialization of node trees back to XML text.

Two renderings are provided:

* :func:`serialize` — compact, canonical-ish output: attributes sorted by
  name, entities escaped, no insignificant whitespace.  Round-trips with
  :func:`repro.xmlstore.parser.parse_document` (parse ∘ serialize is the
  identity on the tree, a property the test suite checks with
  hypothesis).
* :func:`pretty` — indented human-readable output for examples and logs.

``include_ids=True`` adds an internal ``repro:id`` attribute so node ids
survive a serialize/parse round trip; the parser side is handled by
:func:`strip_ids` / :func:`rebind_ids`.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.xmlstore.nodes import Document, Element, Node, NodeId, Text

#: Attribute used to persist node ids across serialization.
ID_ATTRIBUTE = "repro:id"


def escape_text(value: str) -> str:
    """Escape character data."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted serialization."""
    return escape_text(value).replace('"', "&quot;")


def _open_tag(element: Element, include_ids: bool) -> str:
    parts: List[str] = [element.name.text]
    attributes = dict(element.attributes)
    if include_ids:
        attributes[ID_ATTRIBUTE] = repr(element.node_id)
    for key in sorted(attributes):
        parts.append(f'{key}="{escape_attribute(attributes[key])}"')
    return " ".join(parts)


def _serialize_node(node: Node, out: List[str], include_ids: bool) -> None:
    if isinstance(node, Text):
        out.append(escape_text(node.value))
        return
    assert isinstance(node, Element)
    tag = _open_tag(node, include_ids)
    if not node.children:
        out.append(f"<{tag}/>")
        return
    out.append(f"<{tag}>")
    for child in node.children:
        _serialize_node(child, out, include_ids)
    out.append(f"</{node.name.text}>")


def serialize(
    node: Union[Document, Node], include_ids: bool = False, declaration: bool = False
) -> str:
    """Serialize a document or subtree to compact XML text."""
    if isinstance(node, Document):
        if node.root is None:
            return ""
        node = node.root
    out: List[str] = []
    if declaration:
        out.append('<?xml version="1.0" encoding="UTF-8"?>')
    _serialize_node(node, out, include_ids)
    return "".join(out)


def _pretty_node(node: Node, out: List[str], depth: int, indent: str) -> None:
    pad = indent * depth
    if isinstance(node, Text):
        out.append(f"{pad}{escape_text(node.value)}")
        return
    assert isinstance(node, Element)
    tag = _open_tag(node, include_ids=False)
    if not node.children:
        out.append(f"{pad}<{tag}/>")
        return
    if len(node.children) == 1 and isinstance(node.children[0], Text):
        text = escape_text(node.children[0].value)
        out.append(f"{pad}<{tag}>{text}</{node.name.text}>")
        return
    out.append(f"{pad}<{tag}>")
    for child in node.children:
        _pretty_node(child, out, depth + 1, indent)
    out.append(f"{pad}</{node.name.text}>")


def pretty(node: Union[Document, Node], indent: str = "  ") -> str:
    """Serialize with indentation for human consumption."""
    if isinstance(node, Document):
        if node.root is None:
            return ""
        node = node.root
    out: List[str] = []
    _pretty_node(node, out, 0, indent)
    return "\n".join(out)


def strip_ids(document: Document) -> None:
    """Remove persisted ``repro:id`` attributes from every element."""
    for element in document.iter_elements():
        element.attributes.pop(ID_ATTRIBUTE, None)


def rebind_ids(document: Document) -> int:
    """Re-adopt persisted ``repro:id`` attributes as real node ids.

    Returns the number of elements whose id was rebound.  Elements without
    the attribute keep their freshly allocated ids.
    """
    rebound = 0
    for element in list(document.iter_elements()):
        raw = element.attributes.pop(ID_ATTRIBUTE, None)
        if raw is None:
            continue
        document._adopt_id(element, NodeId.parse(raw))
        rebound += 1
    return rebound


def rebind_element_ids(element: Element, document: Document) -> int:
    """Re-adopt persisted ``repro:id`` attributes within one subtree.

    Fragment-level counterpart of :func:`rebind_ids`, used when a
    compensating insert restores a logged snapshot: the restored nodes
    take back their original identities, so earlier compensations that
    reference them by id still resolve.
    """
    rebound = 0
    for el in list(element.iter_elements()):
        raw = el.attributes.pop(ID_ATTRIBUTE, None)
        if raw is None:
            continue
        document._adopt_id(el, NodeId.parse(raw))
        rebound += 1
    return rebound


def canonical(node: Union[Document, Node]) -> str:
    """Canonical text form used for structural equality in tests.

    Identical trees (same names, attributes, text, order — ignoring node
    ids) produce identical canonical strings.
    """
    return serialize(node, include_ids=False)


def trees_equal(a: Union[Document, Node], b: Union[Document, Node]) -> bool:
    """Structural equality of two documents/subtrees (ids ignored)."""
    return canonical(a) == canonical(b)
