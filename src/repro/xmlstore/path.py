"""Path expressions over the node tree.

This is the navigation core under the paper's query language: expressions
like ``ATPList//player``, ``p/citizenship``, ``p/name/lastname`` and the
parent step ``p/citizenship/..`` used by compensation construction
(§3.1).  Supported steps:

* ``name`` — child elements with that (possibly prefixed) name,
* ``*`` — any child element,
* ``//name`` — descendant-or-self elements with that name,
* ``..`` — the parent element,
* ``text()`` — the concatenated text content (terminal step).

Evaluation counts the nodes it traverses through an optional
:class:`TraversalMeter`; the paper (§3.2) uses "the number of XML nodes
affected (traversed)" as the cost measure of forward vs backward
recovery, and experiment E7 reads this meter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import QuerySyntaxError
from repro.obs.prof import PROF
from repro.xmlstore.index import index_enabled
from repro.xmlstore.names import (
    QName,
    is_axml_meta_name,
    is_sc_name,
    is_valid_name,
)
from repro.xmlstore.nodes import Document, Element, Node


class TraversalMeter:
    """Counts nodes touched during path evaluation (paper's cost measure)."""

    __slots__ = ("nodes_traversed",)

    def __init__(self) -> None:
        self.nodes_traversed = 0

    def touch(self, count: int = 1) -> None:
        self.nodes_traversed += count

    def reset(self) -> None:
        self.nodes_traversed = 0


#: A meter that is always available so call sites never branch on None.
NULL_METER = TraversalMeter()


@dataclass(frozen=True)
class Step:
    """One step of a path.

    ``axis`` is ``"child"``, ``"descendant"``, ``"parent"``, ``"text"``
    or ``"attribute"`` (terminal, written ``@name``); ``name`` is the
    element/attribute-name test (``None`` means ``*``).
    """

    axis: str
    name: Optional[QName] = None

    def __str__(self) -> str:
        if self.axis == "parent":
            return ".."
        if self.axis == "text":
            return "text()"
        if self.axis == "attribute":
            return f"@{self.name.text if self.name is not None else '*'}"
        label = self.name.text if self.name is not None else "*"
        return f"//{label}" if self.axis == "descendant" else label


@dataclass(frozen=True)
class PathExpr:
    """A parsed path: a sequence of steps, evaluated left to right."""

    steps: Sequence[Step] = field(default_factory=tuple)

    def __str__(self) -> str:
        out: List[str] = []
        for i, step in enumerate(self.steps):
            text = str(step)
            if i == 0 or text.startswith("//"):
                out.append(text)
            else:
                out.append("/" + text)
        return "".join(out)

    @property
    def returns_text(self) -> bool:
        """True when the final step is ``text()``."""
        return bool(self.steps) and self.steps[-1].axis == "text"

    @property
    def attribute_name(self) -> Optional[str]:
        """The attribute a terminal ``@name`` step selects, or None."""
        if self.steps and self.steps[-1].axis == "attribute":
            name = self.steps[-1].name
            return name.local if name is not None else "*"
        return None

    def attribute_values(
        self,
        context: Union[Document, Element, Sequence[Element]],
        meter: TraversalMeter = NULL_METER,
    ) -> List[str]:
        """Evaluate a path ending in ``@name``: the attribute values of
        the elements the prefix reaches (missing attributes are skipped;
        ``@*`` yields every attribute value)."""
        attr = self.attribute_name
        if attr is None:
            raise QuerySyntaxError(f"path {self} does not end in an attribute step")
        owners = self.evaluate(context, meter)
        values: List[str] = []
        for owner in owners:
            if not isinstance(owner, Element):
                continue
            if attr == "*":
                values.extend(owner.attributes.values())
            elif attr in owner.attributes:
                values.append(owner.attributes[attr])
        return values

    def parent_path(self) -> "PathExpr":
        """The path with a ``..`` step appended.

        This is exactly how §3.1 forms the location of a delete's
        compensating insert: ``p/citizenship`` becomes
        ``p/citizenship/..``.
        """
        return PathExpr(tuple(self.steps) + (Step("parent"),))

    def child_names(self) -> List[str]:
        """Local names of the child steps (used by lazy materialization)."""
        return [step.name.local for step in self.steps
                if step.axis in ("child", "descendant") and step.name is not None]

    def evaluate(
        self,
        context: Union[Document, Element, Sequence[Element]],
        meter: TraversalMeter = NULL_METER,
    ) -> List[Node]:
        """Evaluate against a context node (or node list), document order.

        A ``text`` final step returns the element nodes it was applied to;
        callers read ``text_content()`` themselves — keeping the result
        homogeneous simplifies update targets.
        """
        steps = list(self.steps)
        if isinstance(context, Document):
            current: List[Element] = [context.root] if context.root is not None else []
            # Absolute-path convention (paper's ``ATPList//player``): a
            # leading child step names the root element itself — or the
            # *document* (distributed fragments keep their subtree's root
            # name but are addressed by their document name).
            if current and steps and steps[0].axis == "child":
                meter.touch()
                step_name = steps[0].name
                if _name_matches(steps[0], current[0]) or (
                    step_name is not None
                    and not step_name.prefix
                    and step_name.local == context.name
                ):
                    steps = steps[1:]
                else:
                    current = []
        elif isinstance(context, Element):
            current = [context]
        else:
            current = list(context)
        for step in steps:
            if step.axis in ("text", "attribute"):
                # Terminal value steps: the owning elements are returned;
                # callers extract text_content()/attribute values.
                break
            current = _apply_step(step, current, meter)
        return _dedupe(current)


def _apply_step(
    step: Step, context: List[Element], meter: TraversalMeter
) -> List[Element]:
    result: List[Element] = []
    if step.axis == "child":
        for node in context:
            for child in _logical_children(node, step):
                meter.touch()
                if _name_matches(step, child):
                    result.append(child)
    elif step.axis == "descendant":
        indexed = _indexed_descendants(step, context, meter)
        if indexed is not None:
            return indexed
        PROF.incr("query_tree_walks")
        for node in context:
            descendants = _logical_descendants(node)
            PROF.incr("query_walk_nodes", len(descendants))
            for descendant in descendants:
                meter.touch()
                if _name_matches(step, descendant):
                    result.append(descendant)
    elif step.axis == "parent":
        for node in context:
            meter.touch()
            if node.parent is not None:
                result.append(node.parent)
    else:  # pragma: no cover - parser never produces other axes
        raise AssertionError(f"unknown axis {step.axis!r}")
    return result


def _indexed_descendants(
    step: Step, context: List[Element], meter: TraversalMeter
) -> Optional[List[Element]]:
    """Answer a named descendant step from the document's structural index.

    Returns None (fall back to the subtree walk) when the fast path does
    not apply: the index is disabled, the name test is ``*``, there are
    multiple context nodes (walk order is per-context, not global), the
    context itself sits outside the live logical tree, or the postings
    list is larger than the context's logical subtree (walking is
    cheaper).  When it does answer, the traversal meter is charged the
    *logical* visit count — the same number of nodes the walk would have
    touched — so the paper's traversal-cost experiments (§3.2, E7) keep
    their semantics regardless of which path ran.
    """
    if step.name is None or len(context) != 1 or not index_enabled():
        return None
    ctx = context[0]
    document = ctx.document
    ranks = document.index.order_ranks()
    if ctx.node_id not in ranks:
        return None  # detached or metadata-shadowed context: walk it
    postings = document.index.postings(step.name.local)
    logical = ctx._logical_count
    if len(postings) > logical:
        PROF.incr("query_index_skips")
        return None
    meter.touch(logical)
    PROF.incr("query_index_hits")
    is_root = ctx.parent is None
    matches: List[Tuple[int, Element]] = []
    for element in postings.values():
        rank = ranks.get(element.node_id)
        if rank is None:
            continue  # logically deleted, or inside an axml metadata region
        if not _name_matches(step, element):
            continue
        if not is_root and not _has_ancestor_or_self(element, ctx):
            continue
        matches.append((rank, element))
    matches.sort()
    return [element for _, element in matches]


def _has_ancestor_or_self(element: Element, ancestor: Element) -> bool:
    node: Optional[Element] = element
    while node is not None:
        if node is ancestor:
            return True
        node = node.parent
    return False


# AXML transparency (paper §1/§3.1): the results of an embedded service
# call logically stand where the ``axml:sc`` element sits, so ``p/points``
# must find ``<points>`` inside ``<axml:sc …><points>890</points></axml:sc>``.
# Conversely, call *metadata* (params, fault handlers) is never document
# content.  An explicit ``axml:``-prefixed name test still addresses the
# machinery itself.  The predicates live in :mod:`repro.xmlstore.names`
# so the structural index prunes exactly the same subtrees.


def _is_sc(element: Element) -> bool:
    return is_sc_name(element.name)


def _is_axml_meta(element: Element) -> bool:
    return is_axml_meta_name(element.name)


def _logical_children(node: Element, step: Step) -> List[Element]:
    """Direct children with sc containers expanded (unless explicitly named)."""
    explicit_axml = step.name is not None and step.name.prefix == "axml"
    out: List[Element] = []
    stack = [child for child in reversed(node.children) if isinstance(child, Element)]
    while stack:
        child = stack.pop()
        if _is_sc(child) and not explicit_axml:
            results = [
                grand
                for grand in child.children
                if isinstance(grand, Element) and not _is_axml_meta(grand)
            ]
            stack.extend(reversed(results))
            continue
        out.append(child)
    return out


def _logical_descendants(node: Element) -> List[Element]:
    """Descendant-or-self elements, skipping axml metadata subtrees.

    ``axml:sc`` elements themselves are yielded (so ``//axml:sc`` works)
    but their params/handler regions are not content.
    """
    out: List[Element] = []
    stack: List[Element] = [node]
    while stack:
        current = stack.pop()
        out.append(current)
        for child in reversed(current.children):
            if isinstance(child, Element) and not _is_axml_meta(child):
                stack.append(child)
    return out


def _name_matches(step: Step, element: Element) -> bool:
    if step.name is None:
        return True
    if step.name.prefix:
        return element.name == step.name
    return element.name.local == step.name.local and not element.name.prefix


def _dedupe(nodes: List[Element]) -> List[Node]:
    seen = set()
    out: List[Node] = []
    for node in nodes:
        if node.node_id not in seen:
            seen.add(node.node_id)
            out.append(node)
    return out


def parse_path(text: str) -> PathExpr:
    """Parse a path expression string into a :class:`PathExpr`.

    Grammar (informal)::

        path  ::= step (separator step)*
        step  ::= name | '*' | '..' | 'text()'
        separator ::= '/' | '//'

    A leading ``//`` makes the first step a descendant step (e.g.
    ``ATPList//player`` has steps ``[child ATPList, descendant player]``;
    ``//player`` alone has ``[descendant player]``).
    """
    text = text.strip()
    if not text:
        raise QuerySyntaxError("empty path expression")
    steps: List[Step] = []
    pos = 0
    descendant_next = False
    if text.startswith("//"):
        descendant_next = True
        pos = 2
    elif text.startswith("/"):
        pos = 1
    while pos < len(text):
        end = pos
        while end < len(text) and text[end] != "/":
            end += 1
        token = text[pos:end].strip()
        steps.append(_make_step(token, descendant_next, text))
        descendant_next = False
        pos = end
        if pos < len(text):
            if text.startswith("//", pos):
                descendant_next = True
                pos += 2
            else:
                pos += 1
            if pos >= len(text):
                raise QuerySyntaxError(f"path ends with a separator: {text!r}")
    if not steps:
        raise QuerySyntaxError(f"no steps in path: {text!r}")
    for step in steps[:-1]:
        if step.axis in ("text", "attribute"):
            raise QuerySyntaxError(
                f"'{step}' must be the final step of a path: {text!r}"
            )
    return PathExpr(tuple(steps))


def _make_step(token: str, descendant: bool, full_text: str) -> Step:
    if not token:
        raise QuerySyntaxError(f"empty step in path: {full_text!r}")
    if token == "..":
        if descendant:
            raise QuerySyntaxError(f"'//..' is not a valid step in {full_text!r}")
        return Step("parent")
    if token == "text()":
        return Step("text")
    if token.startswith("@"):
        if descendant:
            raise QuerySyntaxError(f"'//@' is not a valid step in {full_text!r}")
        attr = token[1:]
        if attr == "*":
            return Step("attribute")
        if not is_valid_name(attr):
            raise QuerySyntaxError(f"invalid attribute name {token!r} in {full_text!r}")
        return Step("attribute", QName.parse(attr))
    axis = "descendant" if descendant else "child"
    if token == "*":
        return Step(axis)
    name = QName.parse(token)
    check = name.local
    if not is_valid_name(check):
        raise QuerySyntaxError(f"invalid step name {token!r} in {full_text!r}")
    return Step(axis, name)
