"""The mutable XML node tree with stable node identifiers.

Design notes
------------
The paper's dynamic-compensation construction (§3.1) depends on three
properties of the store that plain DOM trees do not give you for free:

* **Stable unique node ids** — an AXML insert "returns the (unique) ID of
  the inserted node"; its compensation deletes *that id*, not whatever
  happens to match a path later.
* **Ordered children with sibling anchors** — the paper notes the
  delete-compensation "does not preserve the original ordering of the
  deleted nodes" unless the insert semantics allow insertion
  "before/after a specific node" [16].  We record sibling anchors on
  detach so compensation can be order-preserving.
* **Deep cloning that preserves ids** — logging the result of a
  ``<location>`` query must capture the deleted subtree exactly,
  including ids, so re-insertion restores the original identities.

Node ids are allocated from a per-document counter, so two documents can
be built independently and merged without coordination (ids are qualified
by the document's own id).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import NodeNotFound, XmlStructureError
from repro.obs.prof import PROF
from repro.xmlstore.fastpath import fast_path_enabled
from repro.xmlstore.index import StructuralIndex
from repro.xmlstore.names import QName, is_axml_meta_name

_document_counter = itertools.count(1)


class _ObservedAttributes(dict):
    """An element's attribute map, reporting writes to the document.

    The serialization cache is keyed by :attr:`Document.content_epoch`,
    which must move on *every* observable change — including attribute
    writes, which do not alter the tree structure (so they leave the
    structural ``mutation_epoch``, and with it the index rank cache,
    untouched).  Subclassing ``dict`` keeps reads at native speed; only
    the mutating operations pay the one extra increment.
    """

    __slots__ = ("_document",)

    def __init__(self, document: "Document", *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._document = document

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self._document._note_content_change()

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self._document._note_content_change()

    def pop(self, key, *default):
        had = key in self
        value = super().pop(key, *default)
        if had:
            self._document._note_content_change()
        return value

    def popitem(self):
        item = super().popitem()
        self._document._note_content_change()
        return item

    def clear(self) -> None:
        if self:
            super().clear()
            self._document._note_content_change()

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        if args or kwargs:
            self._document._note_content_change()

    def setdefault(self, key, default=None):
        if key in self:
            return self[key]
        super().__setitem__(key, default)
        self._document._note_content_change()
        return default


class NodeId:
    """A stable, globally unique node identifier.

    The identifier is the pair *(document serial, per-document serial)*;
    its string form, e.g. ``"d3.n17"``, is what update services return to
    callers (paper §3.1).
    """

    __slots__ = ("doc_serial", "node_serial")

    def __init__(self, doc_serial: int, node_serial: int):
        self.doc_serial = doc_serial
        self.node_serial = node_serial

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NodeId)
            and self.doc_serial == other.doc_serial
            and self.node_serial == other.node_serial
        )

    def __hash__(self) -> int:
        return hash((self.doc_serial, self.node_serial))

    def __repr__(self) -> str:
        return f"d{self.doc_serial}.n{self.node_serial}"

    @classmethod
    def parse(cls, text: str) -> "NodeId":
        """Parse the ``"d<doc>.n<node>"`` string form back to a NodeId."""
        try:
            doc_part, node_part = text.split(".")
            if doc_part[0] != "d" or node_part[0] != "n":
                raise ValueError(text)
            return cls(int(doc_part[1:]), int(node_part[1:]))
        except (ValueError, IndexError) as exc:
            raise ValueError(f"malformed node id: {text!r}") from exc


class Node:
    """Base class of all tree nodes.

    A node belongs to exactly one :class:`Document` (which allocates its
    id) and has at most one parent.  Subclasses: :class:`Element` and
    :class:`Text`.
    """

    __slots__ = ("node_id", "parent", "_document")

    def __init__(self, document: "Document"):
        self._document = document
        self.node_id: NodeId = document._allocate_id(self)
        self.parent: Optional[Element] = None

    @property
    def document(self) -> "Document":
        """The owning document."""
        return self._document

    # -- tree navigation ----------------------------------------------------

    def ancestors(self) -> Iterator["Element"]:
        """Yield parent, grandparent, … up to (excluding) the document."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """The topmost node of the subtree containing this node."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def is_attached(self) -> bool:
        """True when this node is reachable from its document's root."""
        return self.root() is self._document.root

    def index_in_parent(self) -> int:
        """Position of this node among its parent's children."""
        if self.parent is None:
            raise XmlStructureError("node has no parent")
        return self.parent.children.index(self)

    def preceding_sibling(self) -> Optional["Node"]:
        """The sibling immediately before this node, or None."""
        if self.parent is None:
            return None
        idx = self.index_in_parent()
        if idx == 0:
            return None
        return self.parent.children[idx - 1]

    def following_sibling(self) -> Optional["Node"]:
        """The sibling immediately after this node, or None."""
        if self.parent is None:
            return None
        idx = self.index_in_parent()
        siblings = self.parent.children
        if idx + 1 >= len(siblings):
            return None
        return siblings[idx + 1]

    # -- mutation -----------------------------------------------------------

    def detach(self) -> "DetachRecord":
        """Remove this node from its parent.

        Returns a :class:`DetachRecord` carrying the parent id and sibling
        anchors, which is exactly the information dynamic compensation
        needs to restore order-preserving position (§3.1).
        """
        if self.parent is None:
            raise XmlStructureError("cannot detach a parentless node")
        parent = self.parent
        idx = self.index_in_parent()
        before = self.preceding_sibling()
        after = self.following_sibling()
        parent.children.pop(idx)
        self.parent = None
        self._document._note_detach(parent, self)
        return DetachRecord(
            node=self,
            parent_id=parent.node_id,
            index=idx,
            before_id=before.node_id if before is not None else None,
            after_id=after.node_id if after is not None else None,
        )

    # -- introspection -------------------------------------------------------

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (inclusive)."""
        return 1

    def text_content(self) -> str:
        """Concatenated text of the subtree."""
        return ""

    def clone_into(self, document: "Document", preserve_ids: bool = False) -> "Node":
        """Deep-copy this subtree into *document*.

        With ``preserve_ids=True`` the copy keeps the original ids — used
        when logging deleted subtrees for compensation, so re-insertion
        restores identities.  Preserved ids are re-registered with the
        target document.
        """
        raise NotImplementedError


class DetachRecord:
    """Everything needed to re-attach a detached node where it was.

    ``before_id``/``after_id`` are the sibling anchors ([16]'s
    insert-before/after semantics); ``index`` is the positional fallback.
    """

    __slots__ = ("node", "parent_id", "index", "before_id", "after_id")

    def __init__(
        self,
        node: Node,
        parent_id: NodeId,
        index: int,
        before_id: Optional[NodeId],
        after_id: Optional[NodeId],
    ):
        self.node = node
        self.parent_id = parent_id
        self.index = index
        self.before_id = before_id
        self.after_id = after_id


class Text(Node):
    """A text node."""

    __slots__ = ("_value",)

    def __init__(self, document: "Document", value: str):
        super().__init__(document)
        self._value = value

    @property
    def value(self) -> str:
        return self._value

    @value.setter
    def value(self, new_value: str) -> None:
        # A text rewrite changes serialized output without moving any
        # node, so it bumps only the content epoch.
        self._value = new_value
        self._document._note_content_change()

    def text_content(self) -> str:
        return self.value

    def clone_into(self, document: "Document", preserve_ids: bool = False) -> "Text":
        clone = Text(document, self.value)
        if preserve_ids:
            document._adopt_id(clone, self.node_id)
        return clone

    def __repr__(self) -> str:
        return f"Text({self.value!r}, id={self.node_id!r})"


class Element(Node):
    """An element node with a qualified name, attributes and children.

    ``_logical_count`` is the element count of the *logical* subtree —
    descendant-or-self elements, pruning ``axml`` metadata regions —
    which is exactly how many nodes a descendant walk
    (:func:`repro.xmlstore.path._logical_descendants`) would visit.  It
    is maintained incrementally on attach/detach so indexed descendant
    steps can charge the :class:`~repro.xmlstore.path.TraversalMeter`
    the same logical cost as the walk they replace.
    """

    __slots__ = ("name", "attributes", "children", "_logical_count")

    def __init__(
        self,
        document: "Document",
        name: Union[str, QName],
        attributes: Optional[Dict[str, str]] = None,
    ):
        super().__init__(document)
        self.name: QName = QName.parse(name) if isinstance(name, str) else name
        self.attributes: Dict[str, str] = _ObservedAttributes(
            document, attributes or {}
        )
        self.children: List[Node] = []
        self._logical_count = 1
        document.index.add_element(self)

    # -- construction helpers -------------------------------------------------

    def append(self, child: Node) -> Node:
        """Append *child* as the last child and return it."""
        self._check_adoptable(child)
        child.parent = self
        self.children.append(child)
        self._document._note_attach(self, child)
        return child

    def insert_at(self, index: int, child: Node) -> Node:
        """Insert *child* at *index* (clamped to the valid range)."""
        self._check_adoptable(child)
        index = max(0, min(index, len(self.children)))
        child.parent = self
        self.children.insert(index, child)
        self._document._note_attach(self, child)
        return child

    def insert_before(self, anchor: Node, child: Node) -> Node:
        """Insert *child* immediately before *anchor* (a current child)."""
        idx = self.children.index(anchor)
        return self.insert_at(idx, child)

    def insert_after(self, anchor: Node, child: Node) -> Node:
        """Insert *child* immediately after *anchor* (a current child)."""
        idx = self.children.index(anchor)
        return self.insert_at(idx + 1, child)

    def new_element(
        self, name: Union[str, QName], attributes: Optional[Dict[str, str]] = None
    ) -> "Element":
        """Create and append a child element; returns the child."""
        child = Element(self._document, name, attributes)
        self.append(child)
        return child

    def new_text(self, value: str) -> Text:
        """Create and append a text child; returns the child."""
        child = Text(self._document, value)
        self.append(child)
        return child

    def _check_adoptable(self, child: Node) -> None:
        if child.parent is not None:
            raise XmlStructureError(
                f"node {child.node_id!r} already has a parent; detach it first"
            )
        if child._document is not self._document:
            raise XmlStructureError(
                "cannot attach a node from a different document; use clone_into"
            )
        if child is self or (isinstance(child, Element) and self in child.iter()):
            raise XmlStructureError("attaching a node under itself creates a cycle")

    # -- navigation ------------------------------------------------------------

    def iter(self) -> Iterator[Node]:
        """Depth-first pre-order traversal of the subtree (inclusive)."""
        stack: List[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Element):
                stack.extend(reversed(node.children))

    def iter_elements(self) -> Iterator["Element"]:
        """Like :meth:`iter` but yields only elements."""
        for node in self.iter():
            if isinstance(node, Element):
                yield node

    def child_elements(self) -> List["Element"]:
        """Direct children that are elements, in document order."""
        return [c for c in self.children if isinstance(c, Element)]

    def find_children(self, name: Union[str, QName]) -> List["Element"]:
        """Direct child elements with the given name."""
        qname = QName.parse(name) if isinstance(name, str) else name
        return [c for c in self.child_elements() if c.name == qname]

    def first_child(self, name: Union[str, QName]) -> Optional["Element"]:
        """First direct child element with the given name, or None."""
        matches = self.find_children(name)
        return matches[0] if matches else None

    # -- content ----------------------------------------------------------------

    def text_content(self) -> str:
        return "".join(child.text_content() for child in self.children)

    def set_text(self, value: str) -> None:
        """Replace all children with a single text node holding *value*."""
        for child in list(self.children):
            child.detach()
        self.new_text(value)

    def subtree_size(self) -> int:
        return 1 + sum(child.subtree_size() for child in self.children)

    def clone_into(self, document: "Document", preserve_ids: bool = False) -> "Element":
        clone = Element(document, self.name, dict(self.attributes))
        if preserve_ids:
            document._adopt_id(clone, self.node_id)
        for child in self.children:
            clone.append(child.clone_into(document, preserve_ids=preserve_ids))
        return clone

    def __repr__(self) -> str:
        return f"Element(<{self.name.text}>, id={self.node_id!r}, children={len(self.children)})"


class Document:
    """An XML document: id allocator, node index, and a single root element.

    The document keeps an index from :class:`NodeId` to node so that
    compensation can delete "the node having the corresponding ID" in
    O(1) (§3.1).  Detached nodes stay in the index until garbage-collected
    by :meth:`vacuum`; this mirrors a store that logically deletes.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.serial = next(_document_counter)
        self._next_node_serial = itertools.count(1)
        self._index: Dict[NodeId, Node] = {}
        self._epoch = 0
        self._content_epoch = 0
        #: Serialization cache: (include_ids, declaration) →
        #: (content_epoch, text).  Written by
        #: :func:`repro.xmlstore.serializer.serialize`.
        self._serialize_cache: Dict[Tuple[bool, bool], Tuple[int, str]] = {}
        #: Canonical-digest cache: (content_epoch, hex digest).
        self._digest_cache: Optional[Tuple[int, str]] = None
        self.index = StructuralIndex(self)
        self.root: Optional[Element] = None

    # -- id management -----------------------------------------------------------

    def _allocate_id(self, node: Node) -> NodeId:
        node_id = NodeId(self.serial, next(self._next_node_serial))
        self._index[node_id] = node
        return node_id

    def _adopt_id(self, node: Node, node_id: NodeId) -> None:
        """Re-register *node* under a preserved foreign id."""
        old_id = node.node_id
        del self._index[old_id]
        node.node_id = node_id
        self._index[node_id] = node
        if isinstance(node, Element):
            self.index.rekey_element(node, old_id)
        self._bump_structure()

    # -- structural bookkeeping ---------------------------------------------------

    @property
    def mutation_epoch(self) -> int:
        """Monotonic counter of structural mutations; guards index caches."""
        return self._epoch

    @property
    def content_epoch(self) -> int:
        """Monotonic counter of *observable* mutations.

        Moves with every structural mutation **and** every attribute or
        text write — exactly the changes that can alter serialized
        output.  Keys the serialization and digest caches, so "unchanged
        since last serialize" is a single integer comparison.
        """
        return self._content_epoch

    def _bump_structure(self) -> None:
        """A structural mutation: both epochs move (attach/detach also
        changes what serialization would emit)."""
        self._epoch += 1
        self._content_epoch += 1

    def _note_content_change(self) -> None:
        """A content-only mutation (attribute/text write): serialization
        caches are stale, but the index rank cache is not."""
        self._content_epoch += 1

    def _note_attach(self, parent: Element, child: Node) -> None:
        self._bump_structure()
        if isinstance(child, Element) and not is_axml_meta_name(child.name):
            _propagate_logical_count(parent, child._logical_count)

    def _note_detach(self, parent: Element, child: Node) -> None:
        self._bump_structure()
        if isinstance(child, Element) and not is_axml_meta_name(child.name):
            _propagate_logical_count(parent, -child._logical_count)

    # -- construction --------------------------------------------------------------

    def create_root(
        self, name: Union[str, QName], attributes: Optional[Dict[str, str]] = None
    ) -> Element:
        """Create the root element.  A document has exactly one root."""
        if self.root is not None:
            raise XmlStructureError("document already has a root element")
        self.root = Element(self, name, attributes)
        self._bump_structure()
        return self.root

    def create_element(
        self, name: Union[str, QName], attributes: Optional[Dict[str, str]] = None
    ) -> Element:
        """Create a detached element owned by this document."""
        return Element(self, name, attributes)

    def create_text(self, value: str) -> Text:
        """Create a detached text node owned by this document."""
        return Text(self, value)

    # -- lookup -----------------------------------------------------------------------

    def get_node(self, node_id: NodeId) -> Node:
        """Resolve a node id; raises :class:`NodeNotFound` if absent."""
        try:
            return self._index[node_id]
        except KeyError:
            raise NodeNotFound(f"no node with id {node_id!r} in document {self.name!r}")

    def has_node(self, node_id: NodeId) -> bool:
        """True if *node_id* is known (attached or logically deleted)."""
        return node_id in self._index

    def iter(self) -> Iterator[Node]:
        """Traverse all attached nodes in document order."""
        if self.root is None:
            return iter(())
        return self.root.iter()

    def iter_elements(self) -> Iterator[Element]:
        """Traverse all attached elements in document order."""
        if self.root is None:
            return iter(())
        return self.root.iter_elements()

    def size(self) -> int:
        """Number of attached nodes."""
        return self.root.subtree_size() if self.root is not None else 0

    # -- maintenance ----------------------------------------------------------------------

    def vacuum(self) -> int:
        """Drop index entries for nodes no longer reachable from the root.

        Returns the number of entries removed.  Run after compensation is
        no longer possible (transaction committed and log truncated).
        """
        reachable = set()
        if self.root is not None:
            reachable = {node.node_id for node in self.root.iter()}
        dead = [node_id for node_id in self._index if node_id not in reachable]
        for node_id in dead:
            node = self._index.pop(node_id)
            if isinstance(node, Element):
                self.index.drop_element(node)
        return len(dead)

    def clone(self, preserve_ids: bool = True) -> "Document":
        """Deep-copy the document (used by the snapshot-rollback baseline)."""
        return self.clone_tree(preserve_ids=preserve_ids)

    def clone_tree(
        self,
        preserve_ids: bool = True,
        name: Optional[str] = None,
        parse_equivalent: bool = False,
    ) -> "Document":
        """Direct structural copy of the document — the serialization
        fast path's replacement for serialize→``parse_document`` round
        trips (replication, resync, snapshots).

        ``preserve_ids=True`` keeps every node's id (re-registered with
        the copy, as a compensating action addressing the same ids must
        resolve on the replica); ``preserve_ids=False`` is the
        id-rebinding variant — the copy allocates fresh ids.

        ``parse_equivalent=True`` guarantees the copy is byte-identical
        to what the historical serialize→``parse_document`` route
        produced.  The parser *normalizes* text — adjacent text runs
        merge into one node, surrounding whitespace is stripped,
        whitespace-only runs are dropped — so when the tree is not
        already in that normal form the clone falls back to the real
        round trip (counted as ``clone_fallback``; the common case is
        the direct copy, ``clone_fast``).  Trees built by the parser or
        by the update layer are always parse-normal.
        """
        target_name = self.name if name is None else name
        if parse_equivalent and not (
            fast_path_enabled() and _parse_normal(self.root)
        ):
            PROF.incr("clone_fallback")
            from repro.xmlstore.parser import parse_document
            from repro.xmlstore.serializer import rebind_ids, serialize

            if self.root is None:
                return Document(target_name)
            # roundtrip-ok: the approved fallback site — the one place a
            # serialize→parse round trip is still allowed (see
            # tools/check_serialization_hygiene.py).
            copy = parse_document(
                serialize(self, include_ids=preserve_ids), name=target_name
            )
            if preserve_ids:
                rebind_ids(copy)
            return copy
        PROF.incr("clone_fast")
        copy = Document(target_name)
        if self.root is not None:
            copy.root = _fast_clone_element(self.root, copy, preserve_ids)
            copy._bump_structure()
        return copy

    def restore_from(self, snapshot: "Document", preserve_ids: bool = True) -> None:
        """Wholesale tree swap: replace this document's tree with a copy
        of *snapshot*'s (the snapshot-rollback restore path).

        Existing references to this :class:`Document` object stay valid;
        the node map, structural index and serialization caches are all
        reset/invalided in one step.
        """
        self.root = None
        self._index.clear()
        self.index.clear()
        if snapshot.root is not None:
            self.root = _fast_clone_element(snapshot.root, self, preserve_ids)
        self._bump_structure()

    def __repr__(self) -> str:
        return f"Document({self.name!r}, serial=d{self.serial}, size={self.size()})"


def _propagate_logical_count(parent: Element, delta: int) -> None:
    """Add *delta* logical elements to *parent* and its counting ancestors.

    A subtree contributes to every ancestor up to — and including — the
    first ``axml`` metadata element on the path: metadata elements count
    their own descendants but are pruned from their parent's logical
    subtree, so propagation stops there.
    """
    node: Optional[Element] = parent
    while node is not None:
        node._logical_count += delta
        if is_axml_meta_name(node.name):
            break
        node = node.parent


def _parse_normal(root: Optional[Element]) -> bool:
    """True when a serialize→parse round trip of this tree is the
    identity (modulo node ids).

    The parser normalizes text: strips surrounding whitespace, drops
    whitespace-only runs, merges adjacent runs.  A tree already in that
    normal form round-trips to an identical tree, so
    :meth:`Document.clone_tree` may copy it structurally.
    """
    if root is None:
        return True
    stack: List[Element] = [root]
    while stack:
        element = stack.pop()
        previous_was_text = False
        for child in element.children:
            if isinstance(child, Text):
                if previous_was_text:
                    return False
                value = child.value
                if not value or value != value.strip():
                    return False
                previous_was_text = True
            else:
                previous_was_text = False
                stack.append(child)
    return True


def _fast_clone_element(
    source: Element, document: Document, preserve_ids: bool
) -> Element:
    """Iteratively deep-copy *source* into *document*.

    Unlike :meth:`Node.clone_into` + :meth:`Element.append`, this skips
    the per-attach cycle check (the copy is built top-down, so no cycle
    is possible) and copies ``_logical_count`` directly instead of
    re-propagating it per attach — O(n) instead of O(n²) on deep trees,
    with identical resulting state (including TraversalMeter charges).
    """
    clone = Element(document, source.name, source.attributes)
    clone._logical_count = source._logical_count
    if preserve_ids:
        document._adopt_id(clone, source.node_id)
    stack: List[Tuple[Element, Element]] = [(source, clone)]
    while stack:
        src, dst = stack.pop()
        for child in src.children:
            if isinstance(child, Element):
                child_clone: Node = Element(document, child.name, child.attributes)
                child_clone._logical_count = child._logical_count
            else:
                child_clone = Text(document, child.value)
            if preserve_ids:
                document._adopt_id(child_clone, child.node_id)
            child_clone.parent = dst
            dst.children.append(child_clone)
            if isinstance(child, Element):
                stack.append((child, child_clone))
    return clone


def walk_match(
    start: Element, predicate: Callable[[Element], bool]
) -> Iterator[Element]:
    """Yield descendant-or-self elements of *start* matching *predicate*."""
    for element in start.iter_elements():
        if predicate(element):
            yield element
