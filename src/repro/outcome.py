"""The unified invocation result type.

Historically the repository grew two shapes for "what a service
invocation returned": ``InvocationOutcome`` (the AXML resolver path,
:mod:`repro.axml.materialize`) and ``InvokeResult`` (the RPC reply,
:mod:`repro.p2p.messages`).  They carried overlapping fields and drifted
apart.  This module unifies them behind one **frozen** :class:`Outcome`
with an explicit :class:`OutcomeStatus`; the old names remain importable
as aliases of :class:`Outcome` for one release (see CHANGES.md for the
field mapping).

Field mapping:

========================  =========================================
old field                 Outcome field
========================  =========================================
``fragments``             ``fragments`` (both shapes)
``provider_peer``         ``provider_peer`` (both shapes)
``compensating_definition``  ``compensating_definition`` (resolver)
``compensations``         ``compensations`` (RPC)
``nodes_affected``        ``nodes_affected`` (RPC)
``chain_text``            ``chain_text`` (RPC)
(implicit)                ``status`` (new, explicit)
========================  =========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import ClassVar, List, Optional, Sequence, Tuple


class OutcomeStatus(enum.Enum):
    """How an invocation concluded.

    ``OK`` — executed normally; ``REUSED`` — satisfied from redirected
    results without re-invoking (§3.3b); ``RECOVERED`` — a fault was
    absorbed by forward recovery (§3.2); the remaining values name the
    failure that surfaced when no recovery applied.
    """

    OK = "ok"
    REUSED = "reused"
    RECOVERED = "recovered"
    CONFLICT = "conflict"
    FAULT = "fault"
    DISCONNECTED = "disconnected"
    ERROR = "error"


@dataclass(frozen=True)
class Outcome:
    """What a service invocation returned — the one result shape.

    ``fragments`` are serialized XML results (possibly containing further
    ``axml:sc`` elements — nested invocation).  ``compensations`` carries
    ``(provider_peer, plan_xml)`` compensating-service definitions under
    peer-independent compensation (§3.2); ``compensating_definition`` is
    the legacy single-definition slot the resolver path used.
    ``chain_text`` is the provider's final active-peer chain view (§3.3).

    Instances are frozen: a result is a value, not a mutable message —
    construct a new one instead of editing in place.
    """

    #: Kept so metrics/trace naming for the RPC reply stays ``result``.
    KIND: ClassVar[str] = "result"

    fragments: Sequence[str] = field(default_factory=tuple)
    provider_peer: str = ""
    status: OutcomeStatus = OutcomeStatus.OK
    compensations: Sequence[Tuple[str, str]] = field(default_factory=tuple)
    nodes_affected: int = 0
    chain_text: str = ""
    compensating_definition: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the invocation delivered usable results."""
        return self.status in (
            OutcomeStatus.OK,
            OutcomeStatus.REUSED,
            OutcomeStatus.RECOVERED,
        )

    def texts(self) -> List[str]:
        return list(self.fragments)

    def with_status(self, status: OutcomeStatus) -> "Outcome":
        """A copy of this outcome under a different status."""
        return Outcome(
            fragments=self.fragments,
            provider_peer=self.provider_peer,
            status=status,
            compensations=self.compensations,
            nodes_affected=self.nodes_affected,
            chain_text=self.chain_text,
            compensating_definition=self.compensating_definition,
        )


#: Deprecated aliases — importable for one release; see module docstring.
InvocationOutcome = Outcome
InvokeResult = Outcome
