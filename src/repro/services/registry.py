"""Per-peer service registry.

Each AXML peer hosts a set of services and "provide[s] a user interface
to query/update the AXML documents stored locally" (§1).  The registry
is the lookup surface the P2P layer dispatches incoming invocations
through, and the discovery surface replication uses to mirror services.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import ServiceNotFound
from repro.services.descriptor import ServiceDescriptor
from repro.services.service import Service


class ServiceRegistry:
    """Name → service mapping for one peer."""

    def __init__(self, peer_id: str = ""):
        self.peer_id = peer_id
        self._services: Dict[str, Service] = {}

    def register(self, service: Service) -> Service:
        """Register (or overwrite) a service under its method name."""
        self._services[service.method_name] = service
        return service

    def unregister(self, method_name: str) -> None:
        self._services.pop(method_name, None)

    def lookup(self, method_name: str) -> Service:
        try:
            return self._services[method_name]
        except KeyError:
            raise ServiceNotFound(
                f"peer {self.peer_id!r} hosts no service {method_name!r}"
            )

    def has(self, method_name: str) -> bool:
        return method_name in self._services

    def descriptors(self) -> List[ServiceDescriptor]:
        """All hosted descriptors (the peer's 'WSDL directory')."""
        return [s.descriptor for s in self._services.values()]

    def __iter__(self) -> Iterator[Service]:
        return iter(self._services.values())

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, method_name: str) -> bool:
        return method_name in self._services
