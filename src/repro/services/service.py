"""Service implementations executing against hosted AXML documents.

Services are pure with respect to the peer machinery: they receive a
:class:`ServiceHost` capability object and return a
:class:`ServiceResponse` carrying result fragments plus the change
records the transactional layer logs.  Four concrete kinds cover the
paper's needs:

* :class:`QueryService` — an AXML service "defined as queries … over
  AXML documents" (§1), with lazy materialization of embedded calls;
* :class:`UpdateService` — ditto for updates; the provider can derive
  the compensating-service definition from the returned records (§3.2);
* :class:`FunctionService` — a generic web service backed by a Python
  callable, with optional named-fault injection;
* :class:`DelegatingService` — a service that invokes services on other
  peers while executing (distributed nesting, §1): the shape of Fig. 1's
  S2→S3→S5 chains.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.axml.document import AXMLDocument
from repro.axml.materialize import MaterializationEngine, Resolver
from repro.errors import ServiceError, ServiceFault
from repro.query.ast import ActionType
from repro.query.evaluate import evaluate_select
from repro.query.parser import parse_action, parse_select
from repro.query.update import ChangeRecord, apply_action
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.xmlstore.path import TraversalMeter
from repro.xmlstore.serializer import serialize


class ServiceHost(Protocol):
    """What a service may ask of the peer hosting it."""

    def get_axml_document(self, name: str) -> AXMLDocument:
        """The named local document; raises if not hosted here."""
        ...

    def materialization_resolver(self) -> Optional[Resolver]:
        """Resolver for embedded-call materialization (may be None)."""
        ...

    def invoke_remote(
        self, target_peer: str, method_name: str, params: Dict[str, str]
    ) -> List[str]:
        """Invoke a service on another peer; returns result fragments."""
        ...

    def record_changes(
        self, records: Sequence[ChangeRecord], document_name: str, action_xml: str
    ) -> None:
        """Log tree changes the moment they happen.

        Services call this *before* continuing with further work (e.g.
        delegations), so a failure later in the execution still finds the
        earlier changes in the log — otherwise backward recovery could
        not compensate them (§3.1's logging requirement).
        """
        ...

    def random(self) -> float:
        """A float in [0, 1) from the host's seeded RNG."""
        ...


@dataclass
class ServiceResponse:
    """What one service execution produced."""

    fragments: List[str] = field(default_factory=list)
    records: List[ChangeRecord] = field(default_factory=list)
    document_name: str = ""
    nodes_affected: int = 0
    #: (peer, method) pairs this execution invoked remotely, in order.
    remote_invocations: List[Tuple[str, str]] = field(default_factory=list)


class Service:
    """Base class: descriptor + parameter validation."""

    def __init__(self, descriptor: ServiceDescriptor):
        self.descriptor = descriptor

    @property
    def method_name(self) -> str:
        return self.descriptor.method_name

    def execute(self, params: Dict[str, str], host: ServiceHost) -> ServiceResponse:
        self.descriptor.validate_params(params)
        return self._run(dict(params), host)

    def _run(self, params: Dict[str, str], host: ServiceHost) -> ServiceResponse:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.method_name!r})"


def substitute(template: str, params: Dict[str, str]) -> str:
    """Fill ``$name`` placeholders in a query/action template.

    Raises :class:`ServiceError` on unreferenced placeholders so a typo
    in a workload template fails loudly, not as an empty result.
    """
    try:
        return string.Template(template).substitute(params)
    except KeyError as exc:
        raise ServiceError(f"template parameter {exc.args[0]!r} was not provided")
    except ValueError as exc:
        raise ServiceError(f"malformed template: {exc}")


class QueryService(Service):
    """An AXML query service over one hosted document.

    ``template`` is a Select statement with ``$param`` placeholders, e.g.
    ``Select p/points from p in ATPList//player where p/name/lastname = $name;``.
    Execution lazily materializes the embedded calls the query needs —
    so even a *query* service produces change records (§3.1).
    """

    def __init__(
        self,
        descriptor: ServiceDescriptor,
        template: str,
        evaluation: str = "lazy",
    ):
        super().__init__(descriptor)
        if evaluation not in ("lazy", "eager"):
            raise ServiceError(f"evaluation must be lazy or eager, not {evaluation!r}")
        self.template = template
        self.evaluation = evaluation

    def _run(self, params: Dict[str, str], host: ServiceHost) -> ServiceResponse:
        query = parse_select(substitute(self.template, params))
        document_name = self.descriptor.target_document or query.document_name
        axml_document = host.get_axml_document(document_name)
        meter = TraversalMeter()
        records: List[ChangeRecord] = []
        resolver = host.materialization_resolver()
        if resolver is not None:
            engine = MaterializationEngine(axml_document, resolver, meter)
            if self.evaluation == "lazy":
                report = engine.materialize_for_query(query)
            else:
                report = engine.materialize_all()
            records.extend(report.change_records())
            if records:
                host.record_changes(
                    records, document_name, f"<service method='{self.method_name}'/>"
                )
        result = evaluate_select(query, axml_document.document, meter)
        fragments = [serialize(node) for node in result.all_nodes()]
        return ServiceResponse(
            fragments=fragments,
            records=records,
            document_name=document_name,
            nodes_affected=meter.nodes_traversed,
        )


class UpdateService(Service):
    """An AXML update service over one hosted document.

    ``template`` is an ``<action type="…">`` document with ``$param``
    placeholders.  The response's records are exactly what the provider
    peer logs — and what it derives the compensating-service definition
    from when peer-independent compensation is on (§3.2).
    """

    def __init__(self, descriptor: ServiceDescriptor, template: str):
        super().__init__(descriptor)
        self.template = template

    def _run(self, params: Dict[str, str], host: ServiceHost) -> ServiceResponse:
        action = parse_action(substitute(self.template, params))
        document_name = self.descriptor.target_document or action.location.document_name
        axml_document = host.get_axml_document(document_name)
        meter = TraversalMeter()
        result = apply_action(axml_document.document, action, meter)
        if result.records:
            host.record_changes(result.records, document_name, action.to_xml())
        fragments = [
            f'<inserted id="{node_id!r}"/>' for node_id in result.inserted_ids
        ] or [f'<updated count="{result.target_count}"/>']
        return ServiceResponse(
            fragments=fragments,
            records=list(result.records),
            document_name=document_name,
            nodes_affected=meter.nodes_traversed,
        )


#: Signature of a function-service body: params → result fragments.
FunctionBody = Callable[[Dict[str, str]], List[str]]


class FunctionService(Service):
    """A generic web service backed by a Python callable.

    ``fault_name``/``fault_probability`` inject named faults through the
    host's seeded RNG — the raw material of §3.2's fault handlers.
    Generic services are non-compensatable unless an ``inverse`` body is
    supplied (e.g. *Book Hotel* / *Cancel Hotel Booking*).
    """

    def __init__(
        self,
        descriptor: ServiceDescriptor,
        body: FunctionBody,
        inverse: Optional[FunctionBody] = None,
        fault_name: str = "",
        fault_probability: float = 0.0,
    ):
        super().__init__(descriptor)
        self.body = body
        self.inverse = inverse
        self.fault_name = fault_name
        self.fault_probability = fault_probability

    def _run(self, params: Dict[str, str], host: ServiceHost) -> ServiceResponse:
        if self.fault_probability > 0 and host.random() < self.fault_probability:
            raise ServiceFault(
                self.fault_name or "ServiceFailure",
                f"injected fault in {self.method_name}",
            )
        fragments = list(self.body(params))
        return ServiceResponse(fragments=fragments)


class DelegatingService(Service):
    """A service that invokes services on other peers while executing.

    This produces the paper's distributed nesting: "invocation of a
    service S_X of peer AP2, by peer AP1, may require the peer AP2 to
    invoke another service S_Y of peer AP3 (while executing S_X)" (§1).
    ``delegations`` is an ordered list of ``(target_peer, method_name)``;
    parameters are forwarded.  An optional ``local_action_template``
    performs local work first (so the peer has something to compensate,
    as in Fig. 1's intermediate peers).
    """

    def __init__(
        self,
        descriptor: ServiceDescriptor,
        delegations: Sequence[Tuple[str, str]],
        local_action_template: Optional[str] = None,
        extra_fragments: Sequence[str] = (),
    ):
        super().__init__(descriptor)
        self.delegations = list(delegations)
        self.local_action_template = local_action_template
        #: Constant result fragments appended to every response (lets
        #: scenario services produce observable, reusable results).
        self.extra_fragments = list(extra_fragments)

    def _run(self, params: Dict[str, str], host: ServiceHost) -> ServiceResponse:
        response = ServiceResponse()
        if self.local_action_template is not None:
            action = parse_action(substitute(self.local_action_template, params))
            document_name = (
                self.descriptor.target_document or action.location.document_name
            )
            axml_document = host.get_axml_document(document_name)
            meter = TraversalMeter()
            result = apply_action(axml_document.document, action, meter)
            if result.records:
                # Log immediately: a later delegation may fail, and the
                # local work must already be compensatable.
                host.record_changes(result.records, document_name, action.to_xml())
            response.records.extend(result.records)
            response.document_name = document_name
            response.nodes_affected = meter.nodes_traversed
            if action.action_type is ActionType.QUERY and result.query_result:
                response.fragments.extend(
                    serialize(node) for node in result.query_result.all_nodes()
                )
        for target_peer, method_name in self.delegations:
            fragments = host.invoke_remote(target_peer, method_name, params)
            response.fragments.extend(fragments)
            response.remote_invocations.append((target_peer, method_name))
        response.fragments.extend(self.extra_fragments)
        return response
