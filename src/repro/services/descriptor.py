"""WSDL-like service descriptors.

Every AXML service "is also exposed as a regular Web service (with a
WSDL description file)" (§1).  The descriptor is our WSDL stand-in: it
names the operation, its parameters, the result element, and — for the
transactional layer — whether the service is compensatable and which
document it operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ServiceError


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter of a service operation."""

    name: str
    required: bool = True
    description: str = ""


@dataclass(frozen=True)
class ServiceDescriptor:
    """Description of one service operation.

    ``kind`` is ``query``, ``update``, ``function`` (a generic web
    service) or ``delegating`` (a service that invokes other peers —
    distributed nesting, §1).  ``compensatable`` tells the transactional
    layer whether a compensating operation can be constructed; generic
    function services default to non-compensatable unless they declare
    an inverse.
    """

    method_name: str
    kind: str
    params: Sequence[ParamSpec] = field(default_factory=tuple)
    result_name: str = "result"
    target_document: str = ""
    namespace: str = ""
    compensatable: bool = True
    description: str = ""
    #: Simulated execution latency in seconds (read by the P2P layer).
    latency: float = 0.01

    def validate_params(self, provided: dict) -> None:
        """Raise :class:`ServiceError` if required parameters are missing."""
        missing = [p.name for p in self.params if p.required and p.name not in provided]
        if missing:
            raise ServiceError(
                f"service {self.method_name!r} is missing required parameters: "
                f"{', '.join(missing)}"
            )

    def to_wsdl(self) -> str:
        """A minimal WSDL-flavoured XML rendering of the descriptor."""
        param_parts = "".join(
            f'<part name="{p.name}" required="{str(p.required).lower()}"/>'
            for p in self.params
        )
        return (
            f'<definitions name="{self.method_name}" '
            f'targetNamespace="{self.namespace or self.method_name}">'
            f'<message name="{self.method_name}Request">{param_parts}</message>'
            f'<message name="{self.method_name}Response">'
            f'<part name="{self.result_name}"/></message>'
            f'<portType name="{self.method_name}PortType">'
            f'<operation name="{self.method_name}" kind="{self.kind}"/>'
            f"</portType></definitions>"
        )
