"""The (simulated) web-service layer.

The paper's services are SOAP endpoints described by WSDL; transactions
see them as invocable operations that return XML results or raise named
faults.  This package rebuilds that contract in-process:

* :mod:`repro.services.descriptor` — WSDL-like service descriptors;
* :mod:`repro.services.service` — query/update/function/delegating
  services executing against hosted AXML documents;
* :mod:`repro.services.registry` — the per-peer service registry
  ("AXML services are also exposed as a regular Web service", §1).
"""

from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import (
    DelegatingService,
    FunctionService,
    QueryService,
    Service,
    ServiceHost,
    ServiceResponse,
    UpdateService,
)
from repro.services.registry import ServiceRegistry

__all__ = [
    "ParamSpec",
    "ServiceDescriptor",
    "DelegatingService",
    "FunctionService",
    "QueryService",
    "Service",
    "ServiceHost",
    "ServiceResponse",
    "UpdateService",
    "ServiceRegistry",
]
