"""The AXML document: an XML document plus its embedded service calls."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.axml.service_call import ServiceCall
from repro.query.ast import SelectQuery
from repro.xmlstore.names import SC_NAME
from repro.xmlstore.nodes import Document, Element
from repro.xmlstore.parser import parse_document
from repro.xmlstore.serializer import pretty, serialize


class AXMLDocument:
    """Wraps a :class:`~repro.xmlstore.nodes.Document` with AXML semantics.

    The wrapper discovers embedded service calls, decides which calls a
    query needs (lazy materialization, §3.1) and exposes the document to
    the transactional layer.  It owns no state beyond the document.
    """

    def __init__(self, document: Document, name: Optional[str] = None):
        self.document = document
        if name:
            self.document.name = name

    @classmethod
    def from_xml(cls, xml_text: str, name: str = "") -> "AXMLDocument":
        """Parse AXML text into a wrapped document."""
        document = parse_document(xml_text, name=name)
        if not name and document.root is not None:
            document.name = document.root.name.local
        return cls(document)

    @property
    def name(self) -> str:
        return self.document.name

    # -- service-call discovery ------------------------------------------------

    def service_calls(self) -> List[ServiceCall]:
        """All embedded service calls, in document order.

        Calls nested inside another call's parameter list are *excluded*:
        they are materialized as part of their owner, not independently.
        """
        out: List[ServiceCall] = []
        for element in self.document.iter_elements():
            if element.name != SC_NAME:
                continue
            if self._inside_params(element):
                continue
            out.append(ServiceCall(element))
        return out

    @staticmethod
    def _inside_params(element: Element) -> bool:
        for ancestor in element.ancestors():
            if ancestor.name.local == "params" and ancestor.name.prefix == "axml":
                return True
        return False

    def calls_for_query(self, query: SelectQuery) -> List[ServiceCall]:
        """Lazy-materialization set: calls whose results the query needs.

        §3.1: lazy evaluation "implies that only those embedded service
        calls … are materialized whose results are required for
        evaluating the query".  A call is required when

        * its declared (or inferred) result-element name appears among
          the names the query touches — e.g. query A
          (``p/grandslamswon``) needs ``getGrandSlamsWonbyYear`` but not
          ``getPoints`` — **and**
        * the call sits inside an element the query's source path can
          actually bind, so calls embedded in unrelated items are left
          unmaterialized.
        """
        needed = set(query.required_names())
        if not needed:
            return []
        source_names = self._source_names(query)
        scope_ids = self._source_scope_ids(query)
        selected: List[ServiceCall] = []
        for call in self.service_calls():
            names = set(call.result_names)
            if not names:
                continue
            if names & source_names:
                # The call's results may contain the binding elements
                # themselves (a distributed fragment holding //book): it
                # must be materialized before the source can bind.
                selected.append(call)
                continue
            if not (names & needed):
                continue
            if scope_ids is not None and not self._in_scope(call, scope_ids):
                continue
            selected.append(call)
        return selected

    @staticmethod
    def _source_names(query: SelectQuery):
        from repro.query.ast import NodeRef

        if isinstance(query.source, NodeRef):
            return set()
        return set(query.source.child_names())

    def _source_scope_ids(self, query: SelectQuery):
        """Node ids of the query source's candidate bindings (None =
        unknown scope, fall back to name-only matching)."""
        from repro.query.ast import NodeRef

        if isinstance(query.source, NodeRef):
            from repro.xmlstore.nodes import NodeId

            node_id = NodeId.parse(query.source.node_id_text)
            if not self.document.has_node(node_id):
                return set()
            return {node_id}
        try:
            bindings = query.source.evaluate(self.document)
        except Exception:
            return None
        return {node.node_id for node in bindings}

    @staticmethod
    def _in_scope(call: ServiceCall, scope_ids) -> bool:
        element = call.element
        if element.node_id in scope_ids:
            return True
        return any(anc.node_id in scope_ids for anc in element.ancestors())

    def continuous_calls(self) -> List[ServiceCall]:
        """Calls with a ``frequency`` attribute (subscription services, §3.3d)."""
        return [call for call in self.service_calls() if call.frequency is not None]

    # -- convenience ---------------------------------------------------------------

    def to_xml(self) -> str:
        return serialize(self.document)

    def to_pretty(self) -> str:
        return pretty(self.document)

    def size(self) -> int:
        return self.document.size()

    def __repr__(self) -> str:
        return f"AXMLDocument({self.name!r}, size={self.size()}, calls={len(self.service_calls())})"
