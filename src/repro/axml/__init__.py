"""The ActiveXML engine: documents with embedded service calls.

Rebuilt from scratch (the paper's substrate [19], the ObjectWeb AXML
Java implementation, is obsolete).  The engine implements the semantics
§1 and §3.1 rely on:

* ``axml:sc`` elements embedded in documents, with ``replace``/``merge``
  result modes and optional ``frequency`` (continuous services);
* parameters that may themselves be service calls (local nesting);
* invocation results that may be static XML *or another service call*
  (nested invocation);
* lazy vs eager materialization — lazy materializes only the calls whose
  results a query needs, which is why query compensation must be
  constructed dynamically;
* fault handlers ``axml:catch`` / ``axml:catchAll`` / ``axml:retry``
  (§3.2), the hooks of nested forward recovery.
"""

from repro.axml.service_call import Param, ServiceCall, install_service_call
from repro.axml.document import AXMLDocument
from repro.axml.faults import FaultHandler, RetryPolicy, parse_fault_handlers
from repro.axml.materialize import (
    InvocationOutcome,
    MaterializationEngine,
    MaterializationReport,
    MaterializedCall,
)

__all__ = [
    "Param",
    "ServiceCall",
    "install_service_call",
    "AXMLDocument",
    "FaultHandler",
    "RetryPolicy",
    "parse_fault_handlers",
    "InvocationOutcome",
    "MaterializationEngine",
    "MaterializationReport",
    "MaterializedCall",
]
