"""Continuous (periodic / subscription) services.

§1: "An embedded service call may be invoked (or materialized) … 2)
periodically (specified by the 'frequency' attribute of the AXML service
call tag)."  §3.3(d) builds on the same machinery: "subscription based
continuous services … are responsible for sending updated (streams of)
data at regular intervals", and a sibling detects a disconnection "if it
doesn't receive data at the specified interval".

:class:`ContinuousDriver` schedules periodic materialization of every
``frequency``-carrying call of a document on the simulation's event
queue.  :class:`StreamSubscription` models the §3.3(d) direct
sibling-to-sibling data flow: a consumer that notices the producer's
silence and reports it through the peer's chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.axml.document import AXMLDocument
from repro.axml.materialize import MaterializationEngine, Resolver
from repro.axml.service_call import ServiceCall
from repro.errors import MaterializationError, PeerDisconnected, ServiceFault
from repro.sim.kernel import EventQueue
from repro.xmlstore.nodes import NodeId


@dataclass
class TickRecord:
    """One periodic materialization attempt."""

    time: float
    method_name: str
    succeeded: bool
    records: int = 0


class ContinuousDriver:
    """Drives the periodic calls of one document on an event queue.

    Each call with a ``frequency`` attribute is re-materialized every
    ``frequency`` simulated seconds until :meth:`stop` (or until the
    call element disappears from the document — e.g. compensated away).
    Failures of a tick are recorded, not raised: a periodic refresh that
    fails simply retries at the next tick (the §3.2 machinery only kicks
    in for transactional invocations).
    """

    def __init__(
        self,
        axml_document: AXMLDocument,
        resolver: Resolver,
        events: EventQueue,
        on_tick: Optional[Callable[[TickRecord], None]] = None,
    ):
        self.axml_document = axml_document
        self.resolver = resolver
        self.events = events
        self.on_tick = on_tick
        self.history: List[TickRecord] = []
        self._running: Dict[NodeId, bool] = {}

    def start(self) -> int:
        """Schedule every continuous call; returns how many were found."""
        calls = self.axml_document.continuous_calls()
        for call in calls:
            self._running[call.call_id] = True
            self._schedule(call.call_id, call.frequency or 1.0)
        return len(calls)

    def stop(self, call_id: Optional[NodeId] = None) -> None:
        """Stop one call's ticks (or all of them)."""
        if call_id is None:
            for key in self._running:
                self._running[key] = False
            return
        self._running[call_id] = False

    def tick_count(self, method_name: Optional[str] = None) -> int:
        return sum(
            1
            for record in self.history
            if method_name is None or record.method_name == method_name
        )

    def _schedule(self, call_id: NodeId, period: float) -> None:
        self.events.schedule(period, lambda: self._tick(call_id, period))

    def _tick(self, call_id: NodeId, period: float) -> None:
        if not self._running.get(call_id):
            return
        document = self.axml_document.document
        if not document.has_node(call_id):
            self._running[call_id] = False
            return
        element = document.get_node(call_id)
        if not element.is_attached():
            # The call was compensated/deleted: subscription lapses.
            self._running[call_id] = False
            return
        call = ServiceCall(element)
        engine = MaterializationEngine(self.axml_document, self.resolver)
        try:
            report = engine.materialize_call(call)
            record = TickRecord(
                self.events.clock.now,
                call.method_name,
                succeeded=True,
                records=len(report.change_records()),
            )
        except (ServiceFault, PeerDisconnected, MaterializationError):
            record = TickRecord(
                self.events.clock.now, call.method_name, succeeded=False
            )
        self.history.append(record)
        if self.on_tick is not None:
            self.on_tick(record)
        self._schedule(call_id, period)


@dataclass
class StreamSubscription:
    """A §3.3(d) sibling data stream: producer pushes, consumer watches.

    The consumer expects one datum every ``interval`` seconds.  The
    simulation delivers via :meth:`deliver`; :meth:`check` (scheduled by
    the consumer peer) compares the last delivery time against the
    interval plus ``grace`` and fires ``on_silence`` once when the
    producer has gone quiet — the §3.3(d) detection trigger.
    """

    producer_peer: str
    consumer_peer: str
    interval: float
    grace: float = 0.5
    last_delivery: float = 0.0
    delivered: int = 0
    silent: bool = False
    on_silence: Optional[Callable[[str], None]] = None

    def deliver(self, now: float) -> None:
        self.last_delivery = now
        self.delivered += 1
        self.silent = False

    def check(self, now: float) -> bool:
        """Returns True (and fires the callback once) when the stream is
        overdue."""
        if self.silent:
            return True
        overdue = now - self.last_delivery > self.interval * (1 + self.grace)
        if overdue:
            self.silent = True
            if self.on_silence is not None:
                self.on_silence(self.producer_peer)
        return overdue
