"""Fault handlers for embedded service calls (§3.2).

The paper attaches BPEL4WS-style handlers to ``axml:sc`` elements::

    <axml:catch faultName="A" faultVariable="…">…</axml:catch>
    <axml:catch faultName="B" faultVariable="…">…</axml:catch>
    <axml:catchAll>…</axml:catchAll>

The handler body is "either some Java code or constructs like
``<axml:retry times="" wait=""><axml:sc …/></axml:retry>``".  We model
the body as one of:

* a :class:`RetryPolicy` — retry *times* times, waiting *wait* simulated
  seconds between attempts, optionally against an alternative (replica)
  service call;
* a named hook (the "Java code" case) — resolved at run time against a
  registry of Python callables the application provides;
* absorb — an empty body: the fault is considered handled.

Nested recovery (:mod:`repro.txn.recovery`) consults these handlers to
decide forward vs backward recovery at each peer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ServiceCallError
from repro.xmlstore.names import CATCH_NAME, CATCHALL_NAME, RETRY_NAME, SC_NAME
from repro.xmlstore.nodes import Element

#: Signature of an application hook: receives the fault name and the
#: handler element, returns True when the fault is handled.
HookFn = Callable[[str, Element], bool]


@dataclass
class RetryPolicy:
    """The ``<axml:retry times=".." wait="..">`` construct.

    ``alternative`` holds the optional embedded ``axml:sc`` element for
    retrying against a replicated peer (§3.2: "The optional <axml:sc …>
    allows retrying the invocation using a replicated peer").
    """

    times: int
    wait: float
    alternative: Optional[Element] = None

    @property
    def uses_replica(self) -> bool:
        return self.alternative is not None


@dataclass
class FaultHandler:
    """A parsed ``axml:catch`` / ``axml:catchAll`` handler.

    ``fault_name`` is ``None`` for catchAll.  Exactly one of ``retry``,
    ``hook_name`` or neither (absorb) describes the body.
    """

    fault_name: Optional[str]
    element: Element
    retry: Optional[RetryPolicy] = None
    hook_name: Optional[str] = None

    @property
    def is_catch_all(self) -> bool:
        return self.fault_name is None

    def matches(self, fault_name: str) -> bool:
        return self.is_catch_all or self.fault_name == fault_name


def parse_fault_handlers(sc_element: Element) -> List[FaultHandler]:
    """Extract the fault handlers declared on an ``axml:sc`` element.

    Handlers are returned in document order; matching semantics (first
    specific match, then catchAll) are implemented by
    :func:`select_handler`.
    """
    handlers: List[FaultHandler] = []
    for child in sc_element.child_elements():
        if child.name == CATCH_NAME:
            fault_name = child.attributes.get("faultName", "")
            if not fault_name:
                raise ServiceCallError("axml:catch is missing faultName")
            handlers.append(_build_handler(fault_name, child))
        elif child.name == CATCHALL_NAME:
            handlers.append(_build_handler(None, child))
    return handlers


def _build_handler(fault_name: Optional[str], element: Element) -> FaultHandler:
    retry_el = element.first_child(RETRY_NAME)
    if retry_el is not None:
        times = int(retry_el.attributes.get("times", "1"))
        wait = float(retry_el.attributes.get("wait", "0"))
        alternative = retry_el.first_child(SC_NAME)
        return FaultHandler(
            fault_name, element, retry=RetryPolicy(times, wait, alternative)
        )
    hook_name = element.attributes.get("hook")
    return FaultHandler(fault_name, element, hook_name=hook_name)


def select_handler(
    handlers: List[FaultHandler], fault_name: str
) -> Optional[FaultHandler]:
    """Pick the handler for *fault_name*: specific catches win, then
    catchAll, else ``None`` (fault propagates — backward recovery)."""
    for handler in handlers:
        if not handler.is_catch_all and handler.matches(fault_name):
            return handler
    for handler in handlers:
        if handler.is_catch_all:
            return handler
    return None


class HookRegistry:
    """Registry of application fault hooks (the paper's "Java code" case)."""

    def __init__(self) -> None:
        self._hooks: Dict[str, HookFn] = {}

    def register(self, name: str, fn: HookFn) -> None:
        self._hooks[name] = fn

    def run(self, hook_name: str, fault_name: str, element: Element) -> bool:
        """Invoke the named hook; unknown hooks leave the fault unhandled."""
        hook = self._hooks.get(hook_name)
        if hook is None:
            return False
        return bool(hook(fault_name, element))
