"""The embedded service call (``axml:sc``) model.

An ``axml:sc`` element looks like the paper's §1/§3.1 examples::

    <axml:sc mode="replace" serviceNameSpace="getPoints"
             serviceURL="axml://peer1" methodName="getPoints">
        <axml:params>
            <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
        </axml:params>
        <points>475</points>                    <!-- current results -->
        <axml:catch faultName="A">…</axml:catch>
    </axml:sc>

Children partition into three regions: the parameter list, fault
handlers, and everything else — the *result region*, holding the current
invocation results.  ``mode="replace"`` swaps the region on each
invocation; ``mode="merge"`` appends new results as siblings of the old
ones (§1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ServiceCallError
from repro.xmlstore.names import (
    CATCH_NAME,
    CATCHALL_NAME,
    PARAM_NAME,
    PARAMS_NAME,
    RETRY_NAME,
    SC_NAME,
    VALUE_NAME,
)
from repro.xmlstore.nodes import Element, Node
from repro.xmlstore.parser import parse_fragment
from repro.xmlstore.serializer import serialize

#: Valid values of the ``mode`` attribute.
MODES = ("replace", "merge")


@dataclass
class Param:
    """A service-call parameter.

    ``value`` is the static text when the parameter is literal;
    ``nested_call`` is set instead when the parameter is itself a service
    call (local nesting, §1) that must be materialized first.
    """

    name: str
    value: Optional[str] = None
    nested_call: Optional["ServiceCall"] = None

    @property
    def is_nested(self) -> bool:
        return self.nested_call is not None


class ServiceCall:
    """A live view over an ``axml:sc`` element.

    The view holds no state of its own: every accessor reads the element,
    so concurrent updates through the document are always visible.
    """

    def __init__(self, element: Element):
        if element.name != SC_NAME:
            raise ServiceCallError(
                f"element <{element.name.text}> is not an axml:sc"
            )
        self.element = element

    # -- attributes -----------------------------------------------------

    @property
    def mode(self) -> str:
        mode = self.element.attributes.get("mode", "replace")
        if mode not in MODES:
            raise ServiceCallError(f"unknown service-call mode {mode!r}")
        return mode

    @property
    def service_namespace(self) -> str:
        return self.element.attributes.get("serviceNameSpace", "")

    @property
    def service_url(self) -> str:
        """Where the service lives — in our P2P layer, ``axml://<peer>``."""
        return self.element.attributes.get("serviceURL", "")

    @property
    def method_name(self) -> str:
        name = self.element.attributes.get("methodName", "")
        if not name:
            raise ServiceCallError("axml:sc is missing methodName")
        return name

    @property
    def frequency(self) -> Optional[float]:
        """Invocation period in simulated seconds, for continuous services."""
        raw = self.element.attributes.get("frequency")
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            raise ServiceCallError(f"bad frequency {raw!r}")

    @property
    def result_name(self) -> Optional[str]:
        """Declared result-element name (drives lazy materialization).

        Falls back to the name of an existing result child when the
        attribute is absent — the paper's examples always carry previous
        results (``<points>475</points>``), so inference usually works.
        """
        declared = self.element.attributes.get("resultName")
        if declared:
            return declared
        results = self.result_nodes()
        for node in results:
            if isinstance(node, Element):
                return node.name.local
        return None

    @property
    def fetch_once(self) -> bool:
        """True for storage-like calls (distributed-fragment placeholders):
        once results are present they are authoritative, and
        materialization is skipped instead of refreshing them."""
        return self.element.attributes.get("fetchOnce", "") == "true"

    @property
    def result_names(self) -> List[str]:
        """All element names this call's results may contain.

        Read from the ``resultNames`` attribute (space-separated) when
        present — distributed-fragment placeholders declare every name
        inside the fragment they replaced — else the singular
        :attr:`result_name`.
        """
        declared = self.element.attributes.get("resultNames")
        if declared:
            return declared.split()
        single = self.result_name
        return [single] if single is not None else []

    @property
    def peer_hint(self) -> str:
        """The peer id extracted from ``serviceURL`` (``axml://peerX``)."""
        url = self.service_url
        if url.startswith("axml://"):
            return url[len("axml://") :]
        return url

    # -- regions ----------------------------------------------------------

    def params_element(self) -> Optional[Element]:
        return self.element.first_child(PARAMS_NAME)

    def params(self) -> List[Param]:
        """Parse the parameter list, detecting nested service calls."""
        holder = self.params_element()
        if holder is None:
            return []
        out: List[Param] = []
        for param_el in holder.find_children(PARAM_NAME):
            name = param_el.attributes.get("name", "")
            if not name:
                raise ServiceCallError("axml:param is missing its name")
            nested = param_el.first_child(SC_NAME)
            if nested is not None:
                out.append(Param(name, nested_call=ServiceCall(nested)))
                continue
            value_el = param_el.first_child(VALUE_NAME)
            value = value_el.text_content() if value_el is not None else param_el.text_content()
            out.append(Param(name, value=value))
        return out

    def param_values(self) -> Dict[str, str]:
        """Name→value mapping; raises if a nested param is unmaterialized."""
        values: Dict[str, str] = {}
        for param in self.params():
            if param.is_nested:
                raise ServiceCallError(
                    f"parameter {param.name!r} is a nested service call and "
                    "has not been materialized"
                )
            values[param.name] = param.value or ""
        return values

    def fault_handler_elements(self) -> List[Element]:
        return [
            child
            for child in self.element.child_elements()
            if child.name in (CATCH_NAME, CATCHALL_NAME)
        ]

    def result_nodes(self) -> List[Node]:
        """The current result region: children outside params/handlers."""
        excluded = {PARAMS_NAME, CATCH_NAME, CATCHALL_NAME, RETRY_NAME}
        out: List[Node] = []
        for child in self.element.children:
            if isinstance(child, Element) and child.name in excluded:
                continue
            out.append(child)
        return out

    def nested_result_calls(self) -> List["ServiceCall"]:
        """Service calls sitting in the result region (nested invocation)."""
        return [
            ServiceCall(node)
            for node in self.result_nodes()
            if isinstance(node, Element) and node.name == SC_NAME
        ]

    # -- identity -----------------------------------------------------------

    @property
    def call_id(self):
        """The sc element's node id — stable identity for logging."""
        return self.element.node_id

    def describe(self) -> str:
        return (
            f"{self.method_name}@{self.peer_hint or 'local'}"
            f"[mode={self.mode}, id={self.call_id!r}]"
        )

    def __repr__(self) -> str:
        return f"ServiceCall({self.describe()})"


def install_service_call(
    parent: Element,
    method_name: str,
    service_url: str = "",
    mode: str = "replace",
    params: Optional[Dict[str, str]] = None,
    initial_result_xml: Optional[Sequence[str]] = None,
    result_name: Optional[str] = None,
    frequency: Optional[float] = None,
    service_namespace: Optional[str] = None,
) -> ServiceCall:
    """Create and attach an ``axml:sc`` element under *parent*.

    This is the programmatic construction path used by examples and
    workload generators; hand-written AXML text goes through the XML
    parser instead.
    """
    if mode not in MODES:
        raise ServiceCallError(f"unknown service-call mode {mode!r}")
    attributes = {
        "mode": mode,
        "methodName": method_name,
        "serviceNameSpace": service_namespace or method_name,
        "serviceURL": service_url,
    }
    if result_name:
        attributes["resultName"] = result_name
    if frequency is not None:
        attributes["frequency"] = str(frequency)
    sc_element = parent.new_element(SC_NAME, attributes)
    if params:
        params_el = sc_element.new_element(PARAMS_NAME)
        for name, value in params.items():
            param_el = params_el.new_element(PARAM_NAME, {"name": name})
            param_el.new_element(VALUE_NAME).new_text(value)
    document = parent.document
    for fragment in initial_result_xml or ():
        for node in parse_fragment(fragment, document):
            sc_element.append(node)
    return ServiceCall(sc_element)
