"""Materialization of embedded service calls.

Materializing a call means: resolve nested parameters, invoke the
service, and apply the results to the document under the call's mode
(``replace`` swaps the result region, ``merge`` appends).  Every tree
mutation is captured as the same change records explicit updates
produce, because §3.1's central argument is that *query* evaluation
mutates the document through exactly this path — so query compensation
is built from these records at run time.

The engine is transport-agnostic: it invokes services through a
*resolver* callable, which the P2P layer implements with real (simulated)
network messages so that peer disconnection can strike mid-materialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.axml.document import AXMLDocument
from repro.axml.service_call import ServiceCall
from repro.errors import MaterializationError
from repro.outcome import Outcome
from repro.query.ast import SelectQuery
from repro.query.update import ChangeRecord, InsertRecord, detach_to_record
from repro.xmlstore.nodes import Element
from repro.xmlstore.parser import parse_fragment
from repro.xmlstore.path import NULL_METER, TraversalMeter


#: The unified result shape (see :mod:`repro.outcome`).  The old name
#: ``InvocationOutcome`` remains importable here as a deprecated alias.
InvocationOutcome = Outcome


#: Resolver signature: (call, materialized parameter values) → outcome.
Resolver = Callable[[ServiceCall, Dict[str, str]], InvocationOutcome]


@dataclass
class MaterializedCall:
    """One materialized call and the tree changes it caused."""

    method_name: str
    call_id: object
    outcome: InvocationOutcome
    records: List[ChangeRecord] = field(default_factory=list)
    nested_depth: int = 0


@dataclass
class MaterializationReport:
    """Everything a materialization pass did — input to compensation."""

    calls: List[MaterializedCall] = field(default_factory=list)

    @property
    def invocation_count(self) -> int:
        return len(self.calls)

    def change_records(self) -> List[ChangeRecord]:
        out: List[ChangeRecord] = []
        for call in self.calls:
            out.extend(call.records)
        return out

    def methods(self) -> List[str]:
        return [call.method_name for call in self.calls]

    def merge(self, other: "MaterializationReport") -> None:
        self.calls.extend(other.calls)


class MaterializationEngine:
    """Materializes service calls of one AXML document.

    ``max_depth`` bounds nested invocation (a result that is a service
    call whose result is a service call …) so a misbehaving service
    cannot loop the engine forever.
    """

    def __init__(
        self,
        axml_document: AXMLDocument,
        resolver: Resolver,
        meter: TraversalMeter = NULL_METER,
        max_depth: int = 8,
        follow_nested_results: bool = True,
    ):
        self.axml_document = axml_document
        self.resolver = resolver
        self.meter = meter
        self.max_depth = max_depth
        self.follow_nested_results = follow_nested_results

    # -- public entry points ---------------------------------------------------

    def materialize_for_query(self, query: SelectQuery) -> MaterializationReport:
        """Lazy mode: materialize only the calls the query requires (§3.1)."""
        report = MaterializationReport()
        for call in self.axml_document.calls_for_query(query):
            self._materialize(call, report, depth=0)
        return report

    def materialize_all(self) -> MaterializationReport:
        """Eager mode: materialize every embedded call."""
        report = MaterializationReport()
        for call in self.axml_document.service_calls():
            # A call may have been consumed by a previous nested pass.
            if not call.element.is_attached():
                continue
            self._materialize(call, report, depth=0)
        return report

    def materialize_call(self, call: ServiceCall) -> MaterializationReport:
        """Materialize one specific call (periodic/continuous services)."""
        report = MaterializationReport()
        self._materialize(call, report, depth=0)
        return report

    # -- internals -----------------------------------------------------------------

    def _materialize(
        self, call: ServiceCall, report: MaterializationReport, depth: int
    ) -> None:
        if depth > self.max_depth:
            raise MaterializationError(
                f"nested materialization exceeded max depth {self.max_depth} "
                f"at {call.describe()}"
            )
        if call.fetch_once and call.result_nodes():
            # Storage-like call (e.g. a distributed fragment) already
            # fetched: its results are authoritative, skip the refresh.
            return
        records: List[ChangeRecord] = []
        params = self._resolve_params(call, report, depth)
        outcome = self.resolver(call, params)
        records.extend(self._apply_results(call, outcome.fragments))
        materialized = MaterializedCall(
            method_name=call.method_name,
            call_id=call.call_id,
            outcome=outcome,
            records=records,
            nested_depth=depth,
        )
        report.calls.append(materialized)
        if self.follow_nested_results:
            for nested in call.nested_result_calls():
                self._materialize(nested, report, depth + 1)

    def _resolve_params(
        self, call: ServiceCall, report: MaterializationReport, depth: int
    ) -> Dict[str, str]:
        """Materialize nested parameters first (local nesting, §1).

        The nested call's results are applied in place inside the
        parameter element; the parameter's value is their text content.
        """
        values: Dict[str, str] = {}
        for param in call.params():
            if not param.is_nested:
                values[param.name] = param.value or ""
                continue
            nested = param.nested_call
            assert nested is not None
            self._materialize(nested, report, depth + 1)
            values[param.name] = "".join(
                node.text_content() for node in nested.result_nodes()
            )
        return values

    def _apply_results(
        self, call: ServiceCall, fragments: Sequence[str]
    ) -> List[ChangeRecord]:
        """Apply invocation results under the call's mode (§1).

        ``replace``: previous results are detached (logged as deletes) and
        new fragments inserted in their place.  ``merge``: fragments are
        appended as siblings *after* the previous results.
        """
        records: List[ChangeRecord] = []
        sc_element = call.element
        document = self.axml_document.document
        mode = call.mode
        if mode == "replace":
            for node in call.result_nodes():
                if isinstance(node, Element):
                    self.meter.touch(node.subtree_size())
                    records.append(detach_to_record(node))
                else:
                    node.detach()
                    self.meter.touch()
        for fragment in fragments:
            for node in parse_fragment(fragment, document):
                sc_element.append(node)
                self.meter.touch(node.subtree_size())
                records.append(
                    InsertRecord(
                        node_id=node.node_id,
                        parent_id=sc_element.node_id,
                        index=node.index_in_parent(),
                        inserted_xml=fragment,
                    )
                )
        return records
