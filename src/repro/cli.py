"""Command-line interface: run the paper's scenarios from a shell.

Examples::

    python -m repro atplist --query A
    python -m repro fig1 --fault AP5:S5 --handler AP3:S5
    python -m repro fig2 --case b
    python -m repro fig2 --case b --no-chaining
    python -m repro spheres --super-fraction 0.5 --transactions 500
    python -m repro report --scenario fig1 --fault AP5:S5 --json-out run.json
    python -m repro bench --smoke

All commands drive the :mod:`repro.api` facade.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import (
    Cluster,
    RunConfig,
    SweepConfig,
    add_output_arguments,
    add_run_arguments,
    add_sweep_arguments,
)
from repro.sim.scenarios import QUERY_A, QUERY_B
from repro.txn.recovery import DISCONNECT_FAULT, FaultPolicy


def _print_metrics(cluster) -> None:
    print("\nmetrics:")
    for key, value in sorted(cluster.metrics.snapshot().items()):
        print(f"  {key} = {value}")
    if cluster.metrics.txn_outcomes:
        print(f"  outcomes = {cluster.metrics.txn_outcomes}")


def cmd_atplist(args: argparse.Namespace) -> int:
    """Run a §3.1 worked-example query, optionally aborting it."""
    cluster = Cluster.atplist()
    document = cluster.peer("AP1").get_axml_document("ATPList")
    query = QUERY_A if args.query == "A" else QUERY_B
    txn = cluster.session("AP1").transaction()
    outcome = txn.submit(
        f'<action type="query"><location>{query}</location></action>'
    )
    print(f"query {args.query}: {query}")
    print("materialized:", outcome.materialization.methods())
    print("results:", outcome.query_result.texts())
    if args.abort:
        txn.abort()
        print("aborted: document restored by dynamic compensation")
    else:
        txn.commit()
    print("\ndocument now:")
    print(document.to_pretty())
    _print_metrics(cluster)
    return 0


def _parse_peer_method(raw: str) -> tuple:
    peer_id, _, method = raw.partition(":")
    if not peer_id or not method:
        raise SystemExit(f"expected PEER:METHOD, got {raw!r}")
    return peer_id, method


def cmd_fig1(args: argparse.Namespace) -> int:
    """Run the Fig. 1 nested-recovery scenario with optional fault/handler."""
    cluster = Cluster.fig1(chaining=not args.no_chaining)
    if args.fault:
        peer_id, method = _parse_peer_method(args.fault)
        cluster.injector.fault_service(
            peer_id, method, "Crash", point="after_execute"
        )
    if args.handler:
        peer_id, method = _parse_peer_method(args.handler)
        cluster.peer(peer_id).set_fault_policy(
            method, [FaultPolicy(fault_names={"Crash"}, retry_times=2)]
        )
    txn, error = cluster.run_topology()
    print("Fig.1 run:", "recovered/committed" if error is None else f"aborted ({error})")
    if error is None:
        txn.commit()
    for peer_id, peer in cluster.peers.items():
        doc = peer.get_axml_document(f"D{peer_id[2:]}")
        print(f"  {peer_id}: {doc.to_xml()}")
    _print_metrics(cluster)
    return 0 if error is None else 1


def cmd_fig2(args: argparse.Namespace) -> int:
    """Run one of the Fig. 2 disconnection cases (b/c/d)."""
    from repro.txn.disconnection import (
        run_case_c_child_disconnection,
        run_case_d_sibling_disconnection,
    )

    chaining = not args.no_chaining
    if args.case == "b":
        cluster = Cluster.fig2(extra_peers=("APX",), chaining=chaining)
        cluster.replication.replicate_service("S3", "APX")
        cluster.replication.replicate_document("D3", "APX")
        cluster.peer("AP2").set_fault_policy(
            "S3",
            [FaultPolicy(fault_names={DISCONNECT_FAULT}, retry_times=1,
                         alternative_peer="APX")],
        )
        cluster.injector.disconnect_peer_during("AP3", "AP6", "S6", "after_local_work")
        txn, error = cluster.run_topology()
        print(f"case (b) [{'chaining' if chaining else 'naive'}]: "
              f"recovered={error is None}")
    elif args.case == "c":
        cluster = Cluster.fig2(chaining=chaining)
        txn, _ = cluster.run_topology()
        cluster.peer("AP6").add_pending_work(txn.txn_id, units=20, unit_duration=0.05)
        if not chaining:
            cluster.peer("AP6").known_doomed.add(txn.txn_id)
        cluster.network.disconnect("AP3")
        report = run_case_c_child_disconnection(cluster.peer("AP2"), txn.txn_id)
        cluster.run_until(cluster.clock.now + 5.0)
        print(f"case (c) [{'chaining' if chaining else 'naive'}]: "
              f"informed={report.descendants_informed}")
    else:  # d
        cluster = Cluster.fig2(chaining=chaining)
        txn, _ = cluster.run_topology()
        cluster.network.disconnect("AP3")
        report = run_case_d_sibling_disconnection(cluster.peer("AP4"), txn.txn_id, "AP3")
        print(f"case (d) [{'chaining' if chaining else 'naive'}]: "
              f"relatives informed={report.descendants_informed}")
    _print_metrics(cluster)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos run / sweep / replay with the atomicity oracle.

    Exit status 0 means the oracle verified all-or-nothing outcomes for
    every transaction; 1 means violations (already shrunk to a minimal
    replayable schedule in ``--repro-out``).
    """
    from repro.chaos import (
        chaos_sweep,
        replay_repro_file,
        run_chaos,
        shrink_and_report,
    )
    from repro.obs import write_json_artifact
    from repro.sim.metrics import MetricsCollector

    if args.replay:
        try:
            result = replay_repro_file(args.replay)
        except (OSError, ValueError) as exc:
            print(f"repro chaos: cannot replay {args.replay}: {exc}",
                  file=sys.stderr)
            return 2
        _print_chaos_result(result)
        return 1 if result.violations else 0

    # One shared surface: flags -> RunConfig -> ChaosConfig (the
    # implicit-durability rule lives in RunConfig.to_chaos_config).
    run_config = RunConfig.from_namespace(args)
    config = run_config.to_chaos_config()

    if args.sweep:
        sweep_config = SweepConfig.from_namespace(args)
        metrics = MetricsCollector()
        table, failures = chaos_sweep(
            config,
            seeds=range(sweep_config.seeds),
            concurrencies=sweep_config.concurrencies,
            fault_rates=(config.fault_rate,),
            metrics=metrics,
            workers=sweep_config.workers,
        )
        print(table.render())
        print(
            f"\nchaos_runs = {metrics.get('chaos_runs')}  "
            f"chaos_violations = {metrics.get('chaos_violations')}"
        )
        if args.json_out:
            table.write_json(args.json_out)
            print(f"json artifact written: {args.json_out}")
        return 1 if failures else 0

    result = run_chaos(config)
    _print_chaos_result(result)
    if args.json_out:
        write_json_artifact(args.json_out, result.summary)
        print(f"json summary written: {args.json_out}")
    if result.violations:
        report = shrink_and_report(config, result.plan, repro_path=args.repro_out)
        print(
            f"shrunk schedule: {report.original_events} -> "
            f"{report.minimized_events} events ({report.runs} replays)"
        )
        print(f"repro file written: {args.repro_out}")
        print(f"replay with: python -m repro chaos --replay {args.repro_out}")
        return 1
    return 0


def _print_chaos_result(result) -> None:
    from repro.chaos import describe_plan

    config = result.config
    print(
        f"chaos run: seed={config.seed} txns={config.txns} "
        f"concurrency={config.concurrency} fault_rate={config.fault_rate}"
        + (f" mutate={config.mutate}" if config.mutate else "")
    )
    print(f"fault schedule ({len(result.plan)} events):")
    for line in describe_plan(result.plan) or ["(none)"]:
        print(f"  {line}")
    committed = sum(1 for r in result.results if r.committed)
    print(
        f"outcomes: {committed} committed, "
        f"{len(result.results) - committed} aborted"
    )
    if result.violations:
        print(f"ATOMICITY VIOLATIONS ({len(result.violations)}):")
        for violation in result.violations:
            print(f"  {violation.to_dict()}")
    else:
        print("oracle: all-or-nothing holds for every transaction (0 violations)")


def cmd_spheres(args: argparse.Namespace) -> int:
    """Print the spheres-of-atomicity guarantee rates for a random pool."""
    from repro.sim.rng import SeededRng
    from repro.sim.workload import generate_participant_sets
    from repro.txn.spheres import sphere_guarantee_rate

    pool = [f"AP{i}" for i in range(1, args.pool + 1)]
    super_count = int(round(args.super_fraction * len(pool)))
    super_peers = pool[:super_count]
    rng = SeededRng(args.seed)
    transactions = generate_participant_sets(rng, pool, args.transactions, 2, 6)
    plain = sphere_guarantee_rate(transactions, super_peers)
    upgraded = sphere_guarantee_rate(
        transactions,
        super_peers,
        peer_independent=True,
        replicas_on_super_peers={p: True for p in pool},
    )
    print(f"pool={len(pool)} super={super_count} transactions={args.transactions}")
    print(f"guaranteed (plain):                    {plain:.3f}")
    print(f"guaranteed (peer-indep + replicas):    {upgraded:.3f}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run a scenario and render the observability report.

    Shows transaction outcomes, the message breakdown, latency/depth
    histogram percentiles and the slowest spans; ``--json-out`` also
    writes the full metrics + span tree as a strict-JSON artifact.
    """
    from repro.obs import render_report, write_json_artifact

    if args.scenario == "fig1":
        cluster = Cluster.fig1(chaining=not args.no_chaining)
        if args.fault:
            peer_id, method = _parse_peer_method(args.fault)
            cluster.injector.fault_service(
                peer_id, method, "Crash", point="after_execute"
            )
        if args.handler:
            peer_id, method = _parse_peer_method(args.handler)
            cluster.peer(peer_id).set_fault_policy(
                method, [FaultPolicy(fault_names={"Crash"}, retry_times=2)]
            )
        txn, error = cluster.run_topology()
        if error is None:
            txn.commit()
        title = "fig1 nested recovery"
    else:
        cluster = Cluster.fig2(chaining=not args.no_chaining)
        cluster.injector.disconnect_peer_during(
            "AP3", "AP6", "S6", "after_local_work"
        )
        cluster.run_topology()
        title = "fig2 disconnection (case b window)"

    spans = cluster.spans
    print(render_report(cluster.metrics, spans, title=f"repro report: {title}"))
    if args.json_out:
        write_json_artifact(
            args.json_out,
            {
                "scenario": args.scenario,
                "metrics": cluster.metrics.to_dict(),
                "spans": spans.to_dict(),
            },
        )
        print(f"\njson artifact written: {args.json_out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the T1 throughput sweep and print its table."""
    from repro.sim.throughput import throughput_sweep

    table = throughput_sweep(seed=args.seed, smoke=args.smoke, workers=args.workers)
    print(table.render())
    if args.json_out:
        table.write_json(args.json_out)
        print(f"\njson artifact written: {args.json_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the ICDE'07 AXML-atomicity scenarios from the shell.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_atp = subparsers.add_parser("atplist", help="the §3.1 worked example")
    p_atp.add_argument("--query", choices=("A", "B"), default="A")
    p_atp.add_argument("--abort", action="store_true",
                       help="abort instead of committing (shows compensation)")
    p_atp.set_defaults(fn=cmd_atplist)

    p_f1 = subparsers.add_parser("fig1", help="the §3.2 nested-recovery scenario")
    p_f1.add_argument("--fault", metavar="PEER:METHOD",
                      help="inject a fault, e.g. AP5:S5")
    p_f1.add_argument("--handler", metavar="PEER:METHOD",
                      help="install a retry handler, e.g. AP3:S5")
    p_f1.add_argument("--no-chaining", action="store_true")
    p_f1.set_defaults(fn=cmd_fig1)

    p_f2 = subparsers.add_parser("fig2", help="the §3.3 disconnection cases")
    p_f2.add_argument("--case", choices=("b", "c", "d"), default="b")
    p_f2.add_argument("--no-chaining", action="store_true")
    p_f2.set_defaults(fn=cmd_fig2)

    p_rep = subparsers.add_parser(
        "report", help="run a scenario and print its observability report"
    )
    p_rep.add_argument("--scenario", choices=("fig1", "fig2"), default="fig1")
    p_rep.add_argument("--fault", metavar="PEER:METHOD",
                       help="(fig1) inject a fault, e.g. AP5:S5")
    p_rep.add_argument("--handler", metavar="PEER:METHOD",
                       help="(fig1) install a retry handler, e.g. AP3:S5")
    p_rep.add_argument("--no-chaining", action="store_true")
    add_output_arguments(p_rep)
    p_rep.set_defaults(fn=cmd_report)

    p_b = subparsers.add_parser(
        "bench", help="run the T1 concurrent-throughput sweep"
    )
    p_b.add_argument("--smoke", action="store_true",
                     help="small fast sweep (used by CI)")
    add_run_arguments(p_b)
    add_sweep_arguments(p_b)
    add_output_arguments(p_b)
    p_b.set_defaults(fn=cmd_bench)

    p_ch = subparsers.add_parser(
        "chaos", help="seeded chaos harness + atomicity oracle"
    )
    add_run_arguments(p_ch)
    add_sweep_arguments(p_ch)
    add_output_arguments(p_ch)
    p_ch.add_argument("--sweep", action="store_true",
                      help="sweep seeds x concurrency x fault-rate")
    p_ch.add_argument("--replay", metavar="FILE",
                      help="re-execute a repro file instead of planning")
    p_ch.add_argument("--repro-out", metavar="PATH", default="chaos_repro.json",
                      help="where the minimized repro file goes on failure")
    p_ch.set_defaults(fn=cmd_chaos)

    p_sp = subparsers.add_parser("spheres", help="spheres-of-atomicity analysis")
    p_sp.add_argument("--super-fraction", type=float, default=0.5)
    p_sp.add_argument("--pool", type=int, default=20)
    p_sp.add_argument("--transactions", type=int, default=200)
    p_sp.add_argument("--seed", type=int, default=17)
    p_sp.set_defaults(fn=cmd_spheres)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro-axml`` script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
