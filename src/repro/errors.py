"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# XML substrate
# ---------------------------------------------------------------------------

class XmlError(ReproError):
    """Base class for XML storage/parsing errors."""


class XmlParseError(XmlError):
    """Raised when an XML document cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class XmlStructureError(XmlError):
    """Raised on illegal tree manipulation (e.g. detaching the root)."""


class NodeNotFound(XmlError):
    """Raised when a node id or path resolves to no node."""


# ---------------------------------------------------------------------------
# Query/update language
# ---------------------------------------------------------------------------

class QueryError(ReproError):
    """Base class for query-language errors."""


class QuerySyntaxError(QueryError):
    """Raised when a Select/action expression fails to parse."""

    def __init__(self, message: str, position: int = -1):
        suffix = f" at position {position}" if position >= 0 else ""
        super().__init__(f"{message}{suffix}")
        self.position = position


class QueryEvaluationError(QueryError):
    """Raised when a syntactically valid query cannot be evaluated."""


class UpdateError(QueryError):
    """Raised when an update action cannot be applied."""


# ---------------------------------------------------------------------------
# AXML engine
# ---------------------------------------------------------------------------

class AxmlError(ReproError):
    """Base class for ActiveXML engine errors."""


class ServiceCallError(AxmlError):
    """Raised when an embedded service call is malformed or unresolvable."""


class MaterializationError(AxmlError):
    """Raised when materialization of an embedded service call fails."""


# ---------------------------------------------------------------------------
# Web-service layer
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for service-layer errors."""


class ServiceNotFound(ServiceError):
    """Raised when a service name does not resolve in a registry."""


class ServiceFault(ServiceError):
    """A fault raised by a service during execution.

    ``fault_name`` matches against ``axml:catch`` handlers (paper §3.2).
    """

    def __init__(self, fault_name: str, message: str = ""):
        super().__init__(message or fault_name)
        self.fault_name = fault_name


# ---------------------------------------------------------------------------
# P2P layer
# ---------------------------------------------------------------------------

class P2PError(ReproError):
    """Base class for P2P network errors."""


class PeerDisconnected(P2PError):
    """Raised when a message targets a peer that has left the network."""

    def __init__(self, peer_id: str):
        super().__init__(f"peer {peer_id!r} is disconnected")
        self.peer_id = peer_id


class UnknownPeer(P2PError):
    """Raised when a peer id does not exist in the network."""


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

class TransactionError(ReproError):
    """Base class for transactional errors."""


class TransactionAborted(TransactionError):
    """Raised when an operation is attempted on an aborted transaction."""


class TransactionStateError(TransactionError):
    """Raised on an illegal transaction state transition."""


class CompensationError(TransactionError):
    """Raised when a compensating operation cannot be constructed/applied."""


class AtomicityViolation(TransactionError):
    """Raised when atomicity can no longer be guaranteed (paper §3.3)."""
