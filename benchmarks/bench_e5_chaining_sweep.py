"""E5 — §3.3 at scale: loss of effort, chaining vs naive, over random trees.

Random invocation trees (depth 2–5) run a transaction; a random internal
peer dies mid-execution of its subtree (the §3.3(b) window).  For each
(depth, protocol) we accumulate completed-work discards, reuse, redirect
counts and detection latency across seeds.

Shape being checked: chaining's discarded work stays at/near zero and
its reuse grows with depth, while the naive baseline discards more as
trees deepen; detection latency under chaining is bounded by a couple of
hops regardless of depth.
"""

import pytest

from repro.errors import PeerDisconnected, ServiceFault
from repro.sim.harness import ExperimentTable, mean
from repro.sim.rng import SeededRng
from repro.sim.scenarios import build_topology, run_root_transaction
from repro.sim.workload import generate_invocation_tree, tree_peers

from _util import publish


def pick_victim(topology, rng):
    """A random internal, non-root peer (it has a parent and children)."""
    internal = [p for p in topology if p != "AP1"]
    if not internal:
        return None
    return rng.choice(sorted(internal))


def run_one(depth: int, chaining: bool, seed: int):
    rng = SeededRng(seed)
    topology = generate_invocation_tree(rng, depth=depth, fanout=2)
    victim = pick_victim(topology, rng)
    if victim is None:
        return None
    scenario = build_topology(topology, super_peers=("AP1",), chaining=chaining)
    # The victim dies while its first child executes — its children hold
    # undeliverable results (§3.3b).
    first_child, first_method = topology[victim][0]
    scenario.injector.disconnect_peer_during(
        victim, first_child, first_method, "after_local_work"
    )
    run_root_transaction(scenario)
    metrics = scenario.metrics
    return {
        "discarded": metrics.get("invocations_discarded"),
        "redirected": metrics.get("results_redirected"),
        "detect": metrics.detection_latency(victim),
        "peers": len(tree_peers(topology)),
    }


def run_sweep(seeds=range(8)):
    rows = []
    for depth in (2, 3, 4, 5):
        for chaining in (True, False):
            samples = [run_one(depth, chaining, s) for s in seeds]
            samples = [s for s in samples if s is not None]
            rows.append(
                {
                    "depth": depth,
                    "protocol": "chaining" if chaining else "naive",
                    "peers": mean([s["peers"] for s in samples]),
                    "discarded": mean([s["discarded"] for s in samples]),
                    "redirected": mean([s["redirected"] for s in samples]),
                    "detect_s": mean(
                        [s["detect"] for s in samples if s["detect"] is not None]
                    ),
                }
            )
    return rows


def test_e5_chaining_sweep(benchmark):
    rows = benchmark(run_sweep)
    table = ExperimentTable(
        "E5: loss of effort under disconnection — random trees, 8 seeds/row",
        ["depth", "protocol", "peers", "discarded", "redirected", "detect_s"],
    )
    for row in rows:
        table.add_row(**row)
    by_key = {(r["depth"], r["protocol"]): r for r in rows}
    for depth in (3, 4, 5):
        chained = by_key[(depth, "chaining")]
        naive = by_key[(depth, "naive")]
        # The whole transaction aborts either way (no recovery policy is
        # installed), but chaining redirects orphan results instead of
        # discarding them outright.
        assert chained["redirected"] > 0
        assert naive["redirected"] == 0
        assert chained["discarded"] <= naive["discarded"]
    table.add_note("victim = random internal peer dying mid-child-execution")
    publish(table, "e5_chaining_sweep.txt")
