"""E4 — §3.2: peer-independent vs peer-dependent compensation under churn.

A 4-peer booking transaction runs to completion; then, with probability
*p*, each provider disconnects before the abort.  Peer-dependent
compensation needs every provider alive (each compensates its own
share); peer-independent compensation ships the collected definitions —
and, when a provider is gone, falls back to a super-peer replica of its
document.

Shape being checked: completion rate of compensation degrades steeply
with *p* for peer-dependent mode, but stays near 1.0 for
peer-independent + replicas (the combination the spheres analysis calls
safe).
"""

import pytest

from repro.axml.document import AXMLDocument
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import UpdateService
from repro.sim.rng import SeededRng
from repro.sim.harness import ExperimentTable

from _util import publish

PROVIDERS = ("P1", "P2", "P3")


def build(peer_independent: bool, with_replicas: bool):
    network = SimNetwork()
    origin = AXMLPeer("Origin", network, peer_independent=peer_independent)
    replication = ReplicationManager(network)
    super_peer = AXMLPeer("Super", network, super_peer=True,
                          peer_independent=peer_independent)
    for name in PROVIDERS:
        peer = AXMLPeer(name, network, peer_independent=peer_independent)
        doc_name = f"Doc{name}"
        peer.host_document(
            AXMLDocument.from_xml(f"<{doc_name}><slots/></{doc_name}>", name=doc_name)
        )
        replication.register_primary(doc_name, name)
        peer.host_service(
            UpdateService(
                ServiceDescriptor(
                    f"book{name}", kind="update", params=(ParamSpec("c"),),
                    target_document=doc_name,
                ),
                f'<action type="insert"><data><slot c="$c"/></data>'
                f"<location>Select d from d in {doc_name}//slots;</location></action>",
            )
        )
    return network, origin, replication


def run_point(disconnect_prob: float, peer_independent: bool,
              with_replicas: bool, trials: int = 60, seed: int = 3):
    rng = SeededRng(seed)
    complete = 0
    for _ in range(trials):
        network, origin, replication = build(peer_independent, with_replicas)
        txn = origin.begin_transaction()
        for name in PROVIDERS:
            origin.invoke(txn.txn_id, name, f"book{name}", {"c": "x"})
        if with_replicas:
            # Replicate post-update state onto the super peer (the §3.3
            # "all involved peers are super peers" escape hatch).
            for name in PROVIDERS:
                replication.replicate_document(f"Doc{name}", "Super")
        for name in PROVIDERS:
            if rng.coin(disconnect_prob):
                network.disconnect(name)
        complete += int(origin.abort(txn.txn_id))
    return complete / trials


POINTS = (0.0, 0.2, 0.4, 0.6, 0.8)


def run_sweep():
    rows = []
    for p in POINTS:
        rows.append(
            {
                "disconnect_p": p,
                "peer_dependent": run_point(p, False, False),
                "peer_indep": run_point(p, True, False),
                "peer_indep+replica": run_point(p, True, True),
            }
        )
    return rows


def test_e4_peer_independent(benchmark):
    rows = benchmark(run_sweep)
    table = ExperimentTable(
        "E4: compensation completion rate vs provider disconnect probability",
        ["disconnect_p", "peer_dependent", "peer_indep", "peer_indep+replica"],
    )
    for row in rows:
        table.add_row(**row)
    # At p=0 everything completes.
    assert rows[0]["peer_dependent"] == 1.0
    assert rows[0]["peer_indep"] == 1.0
    # Under churn, peer-independent + replicas dominates.
    high = rows[-1]
    assert high["peer_indep+replica"] == 1.0
    assert high["peer_dependent"] < 0.5
    assert high["peer_indep+replica"] > high["peer_dependent"]
    # Without replicas, peer-independent alone cannot reach dead providers
    # either — matching the spheres analysis.
    assert high["peer_indep"] <= high["peer_indep+replica"]
    table.add_note("replica = each provider's document mirrored on a super peer")
    publish(table, "e4_peer_independent.txt")
