"""E8 — §3.1: lazy vs eager query evaluation.

Sweeps the embedded-call density of a 40-item catalogue and evaluates a
query that needs only the call-backed ``stock`` field of *one* item
class.  Lazy evaluation materializes only the calls the query requires;
eager materializes everything.

Shape being checked: lazy's materialized-call count tracks the query's
actual needs (≤ eager, with the gap widening as density grows), and the
compensation workload (change records to undo on abort) shrinks
proportionally — the reason lazy is "the preferred mode".
"""

import pytest

from repro.axml.materialize import InvocationOutcome, MaterializationEngine
from repro.query.parser import parse_select
from repro.sim.harness import ExperimentTable, ratio
from repro.sim.rng import SeededRng
from repro.sim.workload import generate_catalogue

from _util import publish

ITEMS = 40


def _resolver(call, params):
    return InvocationOutcome(["<stock>fresh</stock>"])


def run_point(density: float, seed: int = 23):
    rng = SeededRng(seed)
    query = parse_select("Select i/stock from i in Cat//book;")

    lazy_doc = generate_catalogue(rng, ITEMS, name="Cat", call_density=density)
    total_calls = len(lazy_doc.service_calls())
    lazy_report = MaterializationEngine(lazy_doc, _resolver).materialize_for_query(query)

    rng = SeededRng(seed)  # identical document for the eager run
    eager_doc = generate_catalogue(rng, ITEMS, name="Cat", call_density=density)
    eager_report = MaterializationEngine(eager_doc, _resolver).materialize_all()

    return {
        "call_density": density,
        "embedded_calls": total_calls,
        "lazy_calls": lazy_report.invocation_count,
        "eager_calls": eager_report.invocation_count,
        "lazy_records": len(lazy_report.change_records()),
        "eager_records": len(eager_report.change_records()),
        "eager/lazy": ratio(
            eager_report.invocation_count, lazy_report.invocation_count
        ),
    }


DENSITIES = (0.1, 0.25, 0.5, 0.75, 1.0)


def test_e8_lazy_vs_eager(benchmark):
    rows = [run_point(d) for d in DENSITIES[:-1]]
    rows.append(benchmark(run_point, DENSITIES[-1]))
    table = ExperimentTable(
        f"E8: lazy vs eager materialization ({ITEMS}-item catalogue, query "
        "needs stock of //book only)",
        [
            "call_density",
            "embedded_calls",
            "lazy_calls",
            "eager_calls",
            "lazy_records",
            "eager_records",
            "eager/lazy",
        ],
    )
    for row in rows:
        table.add_row(**row)
    for row in rows:
        assert row["eager_calls"] == row["embedded_calls"]
        assert row["lazy_calls"] <= row["eager_calls"]
        assert row["lazy_records"] <= row["eager_records"]
    # Lazy only touches //book items (~1/5 of categories): strictly fewer
    # calls at every non-trivial density.
    assert all(
        row["lazy_calls"] < row["eager_calls"]
        for row in rows
        if row["embedded_calls"] > 4
    )
    table.add_note("compensation size (records) shrinks with the materialized set")
    publish(table, "e8_lazy_vs_eager.txt")
