"""A4 (ablation) — optimistic validation vs locks for long AXML transactions.

The paper's workload argument: transaction "duration … can be very long
(in hours)" and documents are active — so pessimistic locks are held
forever and even reads need X (A2 measured that collapse).  The
compensation framework enables the optimistic alternative implemented
in :mod:`repro.txn.occ`: run without blocking, validate at commit,
abort-and-compensate losers.

N concurrent transactions interleave over one catalogue; a fraction are
writers touching a random item, the rest are readers of a random item.
Locks: every access acquires immediately and holds to the end (strict
2PL, no-wait, X-on-read because documents are active).  OCC: conflicts
surface only when a reader actually overlaps a *committed* writer.

Shape being checked: the lock-failure rate is high even with zero
writers (readers collide with readers); OCC's abort rate is zero
without writers and grows gently with the write fraction, staying below
locks throughout.
"""

import pytest

from repro.baselines.lock_manager import LockConflict, LockManager
from repro.query.parser import parse_action
from repro.query.update import apply_action
from repro.sim.harness import ExperimentTable
from repro.sim.rng import SeededRng
from repro.sim.workload import generate_catalogue
from repro.txn.occ import OptimisticValidator, ValidationConflict, read_ids, written_ids

from _util import publish

TXNS = 40
HOT_ITEMS = 4


def _accesses(rng, write_fraction):
    """(kind, item_index) plan for one transaction."""
    kind = "write" if rng.coin(write_fraction) else "read"
    return kind, rng.randint(0, HOT_ITEMS - 1)


def run_point(write_fraction: float, seed: int = 13, rounds: int = 10):
    lock_failures = 0
    occ_aborts = 0
    total = 0
    for round_index in range(rounds):
        rng = SeededRng(seed + round_index)
        catalogue = generate_catalogue(rng, item_count=HOT_ITEMS + 4, name="Cat")
        items = catalogue.document.root.child_elements()
        plans = [_accesses(rng, write_fraction) for _ in range(TXNS)]
        total += TXNS

        # ---- lock-based execution (strict 2PL, held to txn end) -------
        manager = LockManager()
        for index, (kind, item) in enumerate(plans):
            txn_id = f"L{index}"
            try:
                if kind == "read":
                    manager.lock_for_read(txn_id, [items[item]], active=True)
                else:
                    manager.lock_for_update(txn_id, [items[item]])
            except LockConflict:
                lock_failures += 1
        for index in range(TXNS):
            manager.release_all(f"L{index}")

        # ---- optimistic execution --------------------------------------
        validator = OptimisticValidator()
        for index in range(TXNS):
            validator.begin(f"O{index}")
        for index, (kind, item) in enumerate(plans):
            txn_id = f"O{index}"
            sku = items[item].first_child("sku").text_content()
            if kind == "read":
                result = apply_action(
                    catalogue.document,
                    parse_action(
                        '<action type="query"><location>Select i/sku from i in '
                        f"Cat//{items[item].name.local} where i/sku = {sku};"
                        "</location></action>"
                    ),
                )
                validator.track_reads(txn_id, read_ids(result.query_result))
            else:
                result = apply_action(
                    catalogue.document,
                    parse_action(
                        '<action type="insert"><data><touch/></data>'
                        f"<location>Select i from i in Cat//{items[item].name.local} "
                        f"where i/sku = {sku};</location></action>"
                    ),
                )
                validator.track_writes(txn_id, written_ids(result.records))
        for index in range(TXNS):
            try:
                validator.validate_and_commit(f"O{index}")
            except ValidationConflict:
                occ_aborts += 1
    return {
        "write_frac": write_fraction,
        "lock_fail_rate": lock_failures / total,
        "occ_abort_rate": occ_aborts / total,
    }


FRACTIONS = (0.0, 0.1, 0.3, 0.5)


def test_a4_occ_vs_locks(benchmark):
    rows = [run_point(f) for f in FRACTIONS[:-1]]
    rows.append(benchmark(run_point, FRACTIONS[-1]))
    table = ExperimentTable(
        "A4 (ablation): long active-document transactions — locks vs OCC",
        ["write_frac", "lock_fail_rate", "occ_abort_rate"],
    )
    for row in rows:
        table.add_row(**row)
    # Readers alone: locks already fail (X-on-read), OCC never aborts.
    assert rows[0]["lock_fail_rate"] > 0.3
    assert rows[0]["occ_abort_rate"] == 0.0
    # OCC stays below locks at every write fraction.
    assert all(row["occ_abort_rate"] < row["lock_fail_rate"] for row in rows)
    # OCC's abort rate grows with genuine write contention.
    occ = [row["occ_abort_rate"] for row in rows]
    assert occ[-1] > occ[0]
    table.add_note(f"{TXNS} concurrent txns over {HOT_ITEMS} hot items, 10 rounds")
    publish(table, "a4_occ_vs_locks.txt")
