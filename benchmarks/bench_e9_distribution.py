"""E9 — §1's distributed storage: sub-query shipping vs fragment copying.

"the query Q is decomposed and the relevant sub-query sent to the peer
AP2 for evaluation, or … the required fragment of the AXML document is
copied to the peer AP1 and the query Q evaluated locally."

A 60-book fragment lives on AP2; AP1 runs *k* selective queries against
it inside one transaction.  Option (a) ships each sub-query (k small
round trips, nothing to compensate locally); option (b) copies the
fragment once on first touch (one big transfer, local evaluation
afterwards, and the copy itself becomes compensable local state).

Shape being checked: shipping's message count grows linearly with k
while copying's stays constant after the first fetch — so copying
overtakes shipping beyond a small k; bytes moved shows the reverse
trade at k=1 (the copy moves the whole fragment for one answer).
"""

import pytest

from repro.axml.document import AXMLDocument
from repro.p2p.distribution import distribute_fragment, remote_subquery
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.query.parser import parse_select
from repro.sim.harness import ExperimentTable

from _util import publish

BOOKS = 60


def build_library():
    network = SimNetwork()
    ReplicationManager(network)
    ap1 = AXMLPeer("AP1", network)
    ap2 = AXMLPeer("AP2", network)
    body = "".join(
        f"<book><title>t{i}</title><year>{1950 + i}</year></book>"
        for i in range(BOOKS)
    )
    ap1.host_document(
        AXMLDocument.from_xml(f"<Lib><books>{body}</books></Lib>", name="Lib")
    )
    network.replication.register_primary("Lib", "AP1")
    placement = distribute_fragment(ap1, "Lib", "//books", ap2)
    return network, ap1, placement


def run_shipping(k: int):
    network, ap1, placement = build_library()
    txn = ap1.begin_transaction()
    result_bytes = 0
    for i in range(k):
        subquery = parse_select(
            f"Select b/title from b in {placement.fragment_document}//book "
            f"where b/year = {1950 + i};"
        )
        fragments = remote_subquery(ap1, txn.txn_id, placement, subquery)
        result_bytes += sum(len(f) for f in fragments)
    ap1.commit(txn.txn_id)
    return {
        "messages": network.metrics.get("messages"),
        "local_log_records": 0,
        "bytes": result_bytes,
    }


def run_copying(k: int):
    network, ap1, placement = build_library()
    txn = ap1.begin_transaction()
    for i in range(k):
        ap1.submit(
            txn.txn_id,
            '<action type="query"><location>Select b/title from b in '
            f"Lib//book where b/year = {1950 + i};</location></action>",
        )
    log_records = ap1.manager.log.record_count(txn.txn_id)
    copied_bytes = len(
        ap1.get_axml_document("Lib").to_xml()
    )  # fragment now inline
    ap1.commit(txn.txn_id)
    return {
        "messages": network.metrics.get("messages"),
        "local_log_records": log_records,
        "bytes": copied_bytes,
    }


def run_point(k: int):
    shipping = run_shipping(k)
    copying = run_copying(k)
    return {
        "queries": k,
        "ship_msgs": shipping["messages"],
        "copy_msgs": copying["messages"],
        "ship_bytes": shipping["bytes"],
        "copy_bytes": copying["bytes"],
        "copy_log_records": copying["local_log_records"],
    }


KS = (1, 2, 5, 10, 25)


def test_e9_distribution_options(benchmark):
    rows = [run_point(k) for k in KS[:-1]]
    rows.append(benchmark(run_point, KS[-1]))
    table = ExperimentTable(
        f"E9: sub-query shipping vs fragment copying ({BOOKS}-book fragment)",
        [
            "queries",
            "ship_msgs",
            "copy_msgs",
            "ship_bytes",
            "copy_bytes",
            "copy_log_records",
        ],
    )
    for row in rows:
        table.add_row(**row)
    # Shipping messages grow with k; copying is flat after the fetch.
    ship = [row["ship_msgs"] for row in rows]
    copy = [row["copy_msgs"] for row in rows]
    assert ship == sorted(ship) and ship[-1] > ship[0]
    assert copy[0] == copy[-1]
    # Crossover: shipping is cheaper at k=1, copying wins for large k.
    assert rows[0]["ship_msgs"] < rows[0]["copy_msgs"] + 2  # comparable at k=1
    assert rows[-1]["ship_msgs"] > rows[-1]["copy_msgs"]
    # At k=1 the copy moved far more bytes than the one answer needed.
    assert rows[0]["copy_bytes"] > 10 * rows[0]["ship_bytes"]
    # Only copying creates compensable local state.
    assert all(row["copy_log_records"] > 0 for row in rows)
    table.add_note("copy fetches once on first touch; both run inside one txn")
    publish(table, "e9_distribution.txt")
