"""R2 — WAL-shipping replication and deterministic failover.

Two measurements (docs/REPLICATION.md):

* Part A, replicated chaos sweep: seeded chaos runs with ``replicas=2``
  and crash faults on.  The atomicity oracle (including the
  ``replica_diverged`` predicate) must report **zero** violations for
  every seed, and each run must be byte-identical when re-executed —
  replication may not cost determinism.  Shipping volume (frames,
  bytes, failovers, resyncs) is recorded per seed as context.
* Part B, failover replay bound: a primary is killed while shipped
  frames sit unacked on a lagging replica.  Failover must replay *only*
  the shipped tail — the replayed entry count is gated to be at least 1
  and at most the shipped lag at crash time (never a full state
  transfer on the hot path).

Gates are deterministic (logical counters, not wall time); wall-clock
times are informational only.

Run:  python benchmarks/bench_r2_replication.py [--smoke]
Out:  benchmarks/results/BENCH_R2[_smoke].json   (repro-bench-perf/1)
"""

from __future__ import annotations

import argparse
import sys
import time

from _util import perf_record, publish_perf

from repro.axml.document import AXMLDocument
from repro.chaos import ChaosConfig, run_chaos
from repro.chaos.shrink import summary_text
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import UpdateService
from repro.txn.recovery import DISCONNECT_FAULT, FaultPolicy

SHOP2 = "<Shop2><item id='1'><price>10</price></item></Shop2>"

SET_PRICE = (
    '<action type="replace"><data><price>$price</price></data>'
    "<location>Select i/price from i in Shop2//item;</location></action>"
)


def bench_replicated_sweep(args) -> dict:
    """Part A: zero-violation, deterministic replicated chaos sweep."""
    seeds = range(1, 4) if args.smoke else range(1, 11)
    txns = 8 if args.smoke else 12
    rows = []
    violations_total = 0
    nondeterministic = 0
    start = time.perf_counter()
    for seed in seeds:
        config = ChaosConfig(
            seed=seed, txns=txns, fault_rate=0.2, crash_rate=0.3,
            replicas=2, ship_batch=2, durability=True,
        )
        result = run_chaos(config)
        rerun = run_chaos(config)
        identical = summary_text(result) == summary_text(rerun)
        nondeterministic += 0 if identical else 1
        violations_total += len(result.violations)
        counters = result.summary["metrics"]["counters"]
        rows.append({
            "seed": seed,
            "violations": len(result.violations),
            "deterministic": identical,
            "ship_frames": counters.get("ship_frames", 0),
            "ship_bytes": counters.get("ship_bytes", 0),
            "failovers": counters.get("failovers", 0),
            "replica_resyncs": counters.get("replica_resyncs", 0),
        })
        print(
            f"R2/A seed {seed}: {len(result.violations)} violations, "
            f"{counters.get('ship_frames', 0)} frames "
            f"({counters.get('ship_bytes', 0)} bytes) shipped, "
            f"{counters.get('failovers', 0)} failovers, "
            f"deterministic={identical}"
        )
    elapsed = time.perf_counter() - start
    return perf_record(
        "replicated_chaos_sweep",
        args.seed,
        elapsed,
        1.0,  # gate quantity is the violation count, not a ratio
        seeds=list(seeds),
        txns_per_seed=txns,
        violations_total=violations_total,
        nondeterministic_seeds=nondeterministic,
        rows=rows,
    )


def bench_failover_replay(args) -> dict:
    """Part B: failover replays the shipped tail, bounded by the lag."""
    network = SimNetwork()
    replication = ReplicationManager(network)
    origin = AXMLPeer("AP1", network)
    primary = AXMLPeer("AP2", network)
    primary.host_document(AXMLDocument.from_xml(SHOP2, name="Shop2"))
    primary.host_service(UpdateService(
        ServiceDescriptor(
            "setPrice", kind="update", params=(ParamSpec("price"),),
            target_document="Shop2",
        ),
        SET_PRICE,
    ))
    replication.register_primary("Shop2", "AP2")
    replication.register_service("setPrice", "AP2")
    AXMLPeer("AP3", network)
    replication.replicate_document("Shop2", "AP3")
    replication.replicate_service("setPrice", "AP3")
    origin.set_fault_policy(
        "setPrice", [FaultPolicy(fault_names={DISCONNECT_FAULT}, retry_times=1)]
    )

    # Commit N transactions against a lagging replica: frames pile up
    # unacked in AP3's inbox.
    committed = 4 if args.smoke else 12
    replication.lag_replica("AP3")
    for i in range(committed):
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "AP2", "setPrice", {"price": str(20 + i)})
        origin.commit(txn.txn_id)
    shipped_lag = len(replication._channel("AP2", "AP3").unacked)

    # Kill the primary between flush and ack; the next invocation fails
    # over and must replay exactly the shipped tail.
    network.disconnect("AP2")
    start = time.perf_counter()
    txn = origin.begin_transaction()
    origin.invoke(txn.txn_id, "AP2", "setPrice", {"price": "99"})
    origin.commit(txn.txn_id)
    elapsed = time.perf_counter() - start
    replayed = network.metrics.get("failover_replay_entries")
    print(
        f"R2/B failover: {shipped_lag} shipped-unacked entries at crash, "
        f"{replayed} replayed on the failover target "
        f"({network.metrics.get('failovers')} failovers, {elapsed:.4f}s)"
    )
    return perf_record(
        "failover_replay_bound",
        args.seed,
        elapsed,
        1.0,
        committed_before_crash=committed,
        shipped_lag=shipped_lag,
        failover_replay_entries=replayed,
        failovers=network.metrics.get("failovers"),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run (used by the CI perf gate)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    sweep_rec = bench_replicated_sweep(args)
    replay_rec = bench_failover_replay(args)

    suffix = "_smoke" if args.smoke else ""
    path = publish_perf(
        f"BENCH_R2{suffix}.json",
        [sweep_rec, replay_rec],
        smoke=args.smoke,
    )
    print(f"json artifact written: {path}")

    # -- gates (deterministic counters, not wall time) --------------------
    failed = []
    if sweep_rec["violations_total"] != 0:
        failed.append(
            f"replicated sweep reported {sweep_rec['violations_total']} "
            f"oracle violations (expected 0)"
        )
    if sweep_rec["nondeterministic_seeds"] != 0:
        failed.append(
            f"{sweep_rec['nondeterministic_seeds']} seeds were not "
            f"byte-identical on rerun"
        )
    if not any(row["failovers"] > 0 for row in sweep_rec["rows"]):
        failed.append("sweep never exercised a failover (weak coverage)")
    replayed = replay_rec["failover_replay_entries"]
    lag = replay_rec["shipped_lag"]
    if not (1 <= replayed <= lag):
        failed.append(
            f"failover replayed {replayed} entries for a shipped lag of "
            f"{lag} (expected 1 <= replayed <= lag)"
        )
    if failed:
        for reason in failed:
            print(f"FAILED: {reason}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
