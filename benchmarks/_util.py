"""Shared helpers for the benchmark suite.

Each bench regenerates one experiment from DESIGN.md's per-experiment
index, prints its table, and archives it under ``benchmarks/results/``
so EXPERIMENTS.md can quote the exact rows.
"""

from __future__ import annotations

import os

from repro.obs.export import write_json_artifact
from repro.sim.harness import ExperimentTable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def publish(table: ExperimentTable, filename: str) -> None:
    """Print the table and archive it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = table.render()
    print()
    print(text)
    with open(os.path.join(RESULTS_DIR, filename), "w") as handle:
        handle.write(text + "\n")


def publish_json(table: ExperimentTable, filename: str, **extra: object) -> str:
    """Archive the table (plus any extra payloads) as a JSON artifact.

    The artifact is strict JSON — sorted keys, non-finite floats
    exported as null — so downstream tooling can ``json.loads`` it.
    Returns the written path.
    """
    payload = dict(table.to_dict())
    payload.update(extra)
    return write_json_artifact(os.path.join(RESULTS_DIR, filename), payload)


#: Schema tag of perf-benchmark artifacts (BENCH_P1.json and friends);
#: bump when the record shape below changes incompatibly.
PERF_SCHEMA = "repro-bench-perf/1"


def perf_record(
    bench: str,
    seed: int,
    wall_time: float,
    speedup: float,
    index_hit_rate: float = None,
    **extra: object,
) -> dict:
    """One machine-readable perf measurement (docs/PERF.md documents it).

    Required fields: ``bench`` (measurement name), ``seed``,
    ``wall_time`` (seconds, this machine, informational only),
    ``speedup`` (dimensionless ratio — the gated quantity).
    ``index_hit_rate`` is the fraction of descendant steps answered from
    the structural index, when the measurement exercises queries.
    """
    record = {
        "bench": bench,
        "seed": seed,
        "wall_time": round(wall_time, 6),
        "speedup": round(speedup, 4),
    }
    if index_hit_rate is not None:
        record["index_hit_rate"] = round(index_hit_rate, 4)
    record.update(extra)
    return record


def publish_perf(filename: str, records: list, **extra: object) -> str:
    """Archive perf records under ``benchmarks/results/`` as strict JSON."""
    payload = {"schema": PERF_SCHEMA, "records": list(records)}
    payload.update(extra)
    return write_json_artifact(os.path.join(RESULTS_DIR, filename), payload)
