"""Shared helpers for the benchmark suite.

Each bench regenerates one experiment from DESIGN.md's per-experiment
index, prints its table, and archives it under ``benchmarks/results/``
so EXPERIMENTS.md can quote the exact rows.
"""

from __future__ import annotations

import os

from repro.obs.export import write_json_artifact
from repro.sim.harness import ExperimentTable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def publish(table: ExperimentTable, filename: str) -> None:
    """Print the table and archive it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = table.render()
    print()
    print(text)
    with open(os.path.join(RESULTS_DIR, filename), "w") as handle:
        handle.write(text + "\n")


def publish_json(table: ExperimentTable, filename: str, **extra: object) -> str:
    """Archive the table (plus any extra payloads) as a JSON artifact.

    The artifact is strict JSON — sorted keys, non-finite floats
    exported as null — so downstream tooling can ``json.loads`` it.
    Returns the written path.
    """
    payload = dict(table.to_dict())
    payload.update(extra)
    return write_json_artifact(os.path.join(RESULTS_DIR, filename), payload)
