"""A2 (ablation) — lock-based CC [5][6] vs the compensation framework.

§2's dismissal, measured: "due to the 'active' nature of AXML documents,
lock-based protocols are not well suited for AXML systems."

N concurrent transactions each read one random item of a shared
catalogue (multi-granularity locks, strict 2PL, no-wait).  On a
*passive* document S locks suffice and readers coexist.  On an *active*
document the same read may materialize embedded calls inside its result
region, so a correct protocol must take X — reads start conflicting
with each other.  The compensation framework takes no read locks at
all: concurrent readers always proceed, and write conflicts surface (if
ever) as compensable aborts.

Shape being checked: lock-conflict rate for concurrent readers is ~0 on
passive documents and rises steeply with reader count on active ones,
while the compensation column stays at 0 throughout.
"""

import pytest

from repro.baselines.lock_manager import LockConflict, LockManager
from repro.query.parser import parse_select
from repro.query.evaluate import evaluate_select
from repro.sim.harness import ExperimentTable
from repro.sim.rng import SeededRng
from repro.sim.workload import generate_catalogue

from _util import publish


def run_point(readers: int, seed: int = 9, rounds: int = 30):
    rng = SeededRng(seed)
    conflicts_passive = 0
    conflicts_active = 0
    attempts = 0
    for _ in range(rounds):
        axml = generate_catalogue(rng, item_count=10, name="Cat", call_density=0.8)
        document = axml.document
        items = document.root.child_elements()
        for active in (False, True):
            manager = LockManager()
            for reader in range(readers):
                txn_id = f"R{reader}"
                # Two readers often touch overlapping regions.
                target = items[rng.randint(0, min(3, len(items) - 1))]
                attempts += active  # count once per (round, reader)
                try:
                    manager.lock_for_read(txn_id, [target], active=active)
                except LockConflict:
                    if active:
                        conflicts_active += 1
                    else:
                        conflicts_passive += 1
            for reader in range(readers):
                manager.release_all(f"R{reader}")
    return {
        "readers": readers,
        "lock_passive": conflicts_passive / attempts if attempts else 0.0,
        "lock_active": conflicts_active / attempts if attempts else 0.0,
        "compensation": 0.0,  # no read locks: concurrent reads never conflict
    }


READERS = (1, 2, 4, 8, 16)


def test_a2_locks_vs_compensation(benchmark):
    rows = [run_point(r) for r in READERS[:-1]]
    rows.append(benchmark(run_point, READERS[-1]))
    table = ExperimentTable(
        "A2 (ablation): reader conflict rate — locks (passive/active doc) vs compensation",
        ["readers", "lock_passive", "lock_active", "compensation"],
    )
    for row in rows:
        table.add_row(**row)
    assert all(row["lock_passive"] == 0.0 for row in rows)  # S locks coexist
    assert rows[0]["lock_active"] == 0.0  # one reader never conflicts
    actives = [row["lock_active"] for row in rows]
    assert actives == sorted(actives)  # monotone in reader count
    assert actives[-1] > 0.4  # reads collapse on active documents
    assert all(row["compensation"] == 0.0 for row in rows)
    table.add_note("active doc: lazy materialization forces X locks on read regions")
    publish(table, "a2_locks_vs_compensation.txt")
