"""E1 — §3.1 worked examples: dynamic compensation is correct and cheap.

Runs the paper's exact operations (the Federer delete, the Nadal
replace, lazy queries A and B) plus randomized transactions, and checks
that the dynamically constructed compensation restores the canonical
pre-state every time.  Columns report the run-time log footprint and the
paper's cost measure (nodes affected) for the forward operation vs its
compensation.
"""

import pytest

from repro.query.parser import parse_action
from repro.query.update import apply_action
from repro.sim.harness import ExperimentTable
from repro.sim.rng import SeededRng
from repro.sim.scenarios import QUERY_A, QUERY_B, build_atplist_scenario
from repro.sim.workload import generate_catalogue, generate_operation
from repro.txn.compensation import compensating_actions_for
from repro.xmlstore.path import TraversalMeter
from repro.xmlstore.serializer import canonical

from _util import publish

PAPER_OPS = [
    (
        "delete(Federer/citizenship)",
        '<action type="delete"><location>Select p/citizenship from p in '
        "ATPList//player where p/name/lastname = Federer;</location></action>",
    ),
    (
        "replace(Nadal/citizenship)",
        '<action type="replace"><data><citizenship>USA</citizenship></data>'
        "<location>Select p/citizenship from p in ATPList//player "
        "where p/name/lastname = Nadal;</location></action>",
    ),
    ("query A (lazy, merge)", f'<action type="query"><location>{QUERY_A}</location></action>'),
    ("query B (lazy, replace)", f'<action type="query"><location>{QUERY_B}</location></action>'),
]


def run_paper_op(label, action_xml):
    scenario = build_atplist_scenario()
    peer = scenario.peer("AP1")
    document = peer.get_axml_document("ATPList")
    pre = canonical(document.document)
    txn = peer.begin_transaction()
    outcome = peer.submit(txn.txn_id, action_xml)
    records = outcome.change_records()
    log_bytes = peer.manager.log.approximate_bytes(txn.txn_id)
    comp_meter = TraversalMeter()
    comp_actions = compensating_actions_for(
        outcome.update_result, "ATPList"
    ) if outcome.update_result else None
    if comp_actions is None:
        from repro.txn.compensation import compensate_records

        comp_actions = compensate_records(records, "ATPList")
    for action in comp_actions:
        apply_action(document.document, action, comp_meter, tolerate_missing_targets=True)
    return {
        "operation": label,
        "records": len(records),
        "comp_actions": len(comp_actions),
        "log_bytes": log_bytes,
        "fwd_nodes": outcome.nodes_affected,
        "comp_nodes": comp_meter.nodes_traversed,
        "restored": int(canonical(document.document) == pre),
    }


def run_random_batch(seed: int, transactions: int = 20, length: int = 6):
    rng = SeededRng(seed)
    restored = 0
    records_total = 0
    for _ in range(transactions):
        axml = generate_catalogue(rng, item_count=8, name="Cat")
        pre = canonical(axml.document)
        applied = []
        for _ in range(length):
            action = generate_operation(rng, axml)
            try:
                applied.append(apply_action(axml.document, action))
            except Exception:
                continue
        records_total += sum(len(r.records) for r in applied)
        for result in reversed(applied):
            for comp in compensating_actions_for(result, "Cat"):
                apply_action(axml.document, comp, tolerate_missing_targets=True)
        restored += int(canonical(axml.document) == pre)
    return restored, transactions, records_total


def test_e1_dynamic_compensation(benchmark):
    rows = [run_paper_op(label, xml) for label, xml in PAPER_OPS]
    restored, transactions, records_total = benchmark(run_random_batch, 42)
    table = ExperimentTable(
        "E1: dynamic compensation — paper ops + randomized transactions",
        [
            "operation",
            "records",
            "comp_actions",
            "log_bytes",
            "fwd_nodes",
            "comp_nodes",
            "restored",
        ],
    )
    for row in rows:
        table.add_row(**row)
        assert row["restored"] == 1, row
    assert restored == transactions
    table.add_row(
        operation=f"random x{transactions} (len 6)",
        records=records_total,
        comp_actions="-",
        log_bytes="-",
        fwd_nodes="-",
        comp_nodes="-",
        restored=restored / transactions,
    )
    # Lazy queries materialize calls, so even queries have records (§3.1).
    assert all(row["records"] >= 1 for row in rows)
    table.add_note("restored=1: canonical post-compensation state equals pre-state")
    publish(table, "e1_compensation.txt")
