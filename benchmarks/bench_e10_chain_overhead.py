"""E10 — the price of chaining: piggyback bytes vs failure-free cost.

§3.3's protocol piggybacks the active-peer list on every invocation.
The paper asserts the benefit (E5/F2 measure it); this bench quantifies
the *cost* in the failure-free case: extra bytes per invocation and the
growth of the chain text with tree size.

Shape being checked: per-invocation chain text grows roughly linearly
with the number of peers already enlisted (the serialized tree), total
piggyback bytes grow ~quadratically with tree size — but even at 40
peers the absolute overhead stays in the low kilobytes per transaction,
i.e. negligible next to a single fragment copy (E9's ~3 KB).
"""

import pytest

from repro.p2p.messages import InvokeRequest
from repro.sim.harness import ExperimentTable, ratio
from repro.sim.rng import SeededRng
from repro.sim.scenarios import build_topology, run_root_transaction
from repro.sim.workload import generate_invocation_tree, tree_peers

from _util import publish


class _ByteCounter:
    """Wraps network.rpc to sum chain-text payload bytes."""

    def __init__(self, network):
        self.network = network
        self.total_chain_bytes = 0
        self.invocations = 0
        self.max_chain_bytes = 0
        self._original = network.rpc
        network.rpc = self._rpc

    def _rpc(self, source_id, target_id, request: InvokeRequest):
        self.invocations += 1
        size = len(request.chain_text)
        self.total_chain_bytes += size
        self.max_chain_bytes = max(self.max_chain_bytes, size)
        result = self._original(source_id, target_id, request)
        self.total_chain_bytes += len(result.chain_text)
        return result


def run_point(depth: int, seed: int = 31):
    rng = SeededRng(seed)
    topology = generate_invocation_tree(rng, depth=depth, fanout=2, fanout_jitter=False)
    peers = len(tree_peers(topology))
    scenario = build_topology(topology, super_peers=("AP1",))
    counter = _ByteCounter(scenario.network)
    txn, error = run_root_transaction(scenario)
    assert error is None
    baseline = build_topology(topology, super_peers=("AP1",), chaining=False)
    base_counter = _ByteCounter(baseline.network)
    run_root_transaction(baseline)
    return {
        "depth": depth,
        "peers": peers,
        "invocations": counter.invocations,
        "chain_bytes": counter.total_chain_bytes,
        "max_msg_bytes": counter.max_chain_bytes,
        "bytes/invocation": counter.total_chain_bytes / counter.invocations,
        "naive_bytes": base_counter.total_chain_bytes,
    }


DEPTHS = (2, 3, 4, 5)


def test_e10_chain_overhead(benchmark):
    rows = [run_point(d) for d in DEPTHS[:-1]]
    rows.append(benchmark(run_point, DEPTHS[-1]))
    table = ExperimentTable(
        "E10: chaining piggyback overhead (failure-free runs, fanout 2)",
        [
            "depth",
            "peers",
            "invocations",
            "chain_bytes",
            "max_msg_bytes",
            "bytes/invocation",
            "naive_bytes",
        ],
    )
    for row in rows:
        table.add_row(**row)
    # Without chaining the piggyback cost is exactly zero.
    assert all(row["naive_bytes"] == 0 for row in rows)
    # Per-invocation cost grows with the enlisted-peer count...
    per_invocation = [row["bytes/invocation"] for row in rows]
    assert per_invocation == sorted(per_invocation)
    # ...but stays modest in absolute terms: at 63 peers the whole
    # transaction's piggyback sums to ~40 KB and no single message
    # carries more than ~0.6 KB of chain text.
    assert rows[-1]["chain_bytes"] < 64_000
    assert rows[-1]["max_msg_bytes"] < 1_000
    table.add_note("bytes counted on requests and merged-back results")
    publish(table, "e10_chain_overhead.txt")
