"""P1 — hot-path performance: structural indexes and parallel sweeps.

Two measurements, both gated (a regression makes this script exit 1,
and CI runs it with ``--smoke`` on every push):

* **Part A — indexed vs. walk-based query evaluation.**  Builds one
  deep, wide document (depth 6, fanout 8; node-budgeted) and evaluates
  descendant Select queries with the structural index enabled and then
  forcibly disabled (:func:`repro.xmlstore.index.index_disabled`).
  Results and traversal-meter charges must be identical; wall time must
  not be (gate: indexed strictly faster in smoke, >= 2x in full runs).
* **Part B — serial vs. parallel C1 chaos sweep.**  Runs the same sweep
  with ``workers=1`` and ``workers=N`` and requires the rendered table
  and its JSON payload to be **byte-identical** — the determinism
  contract of :mod:`repro.sim.parallel` — plus a wall-time reduction
  whenever the machine actually has >= 2 cores to run on.

Run:  python benchmarks/bench_p1_hot_paths.py [--smoke] [--seed N]
                                              [--workers N]

The artifact (``benchmarks/results/BENCH_P1.json``, schema
``repro-bench-perf/1``) is documented in docs/PERF.md.  Speedups and
byte-identity are machine-independent claims; raw wall times are this
machine's and are informational only.
"""

import argparse
import sys
import time

from repro.chaos import ChaosConfig, chaos_sweep
from repro.obs import stable_json
from repro.obs.prof import PROF
from repro.query.evaluate import evaluate_select
from repro.query.parser import parse_select
from repro.sim.metrics import MetricsCollector
from repro.sim.parallel import available_cores
from repro.sim.rng import SeededRng
from repro.xmlstore.index import index_disabled
from repro.xmlstore.names import QName
from repro.xmlstore.nodes import Document, Element
from repro.xmlstore.path import TraversalMeter

from _util import perf_record, publish_perf

#: Queries of Part A: a bare descendant step and a filtered one (the
#: paper's ``<location>`` queries are exactly this shape, §3.1).
QUERIES = (
    "Select n from n in Bench//needle;",
    "Select n from n in Bench//needle where n/@rank = 3;",
)


def build_bench_document(depth: int, fanout: int, budget: int, seed: int) -> Document:
    """A seeded document: full (depth x fanout) tree under a node budget,
    with sparse ``<needle rank=.../>`` leaves the queries hunt for."""
    rng = SeededRng(seed)
    doc = Document("Bench")
    root = doc.create_root(QName("Bench"))
    frontier = [root]
    built = 1
    for level in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                if built >= budget:
                    return doc
                if level >= 2 and rng.random() < 0.03:
                    child = Element(doc, "needle", {"rank": str(rng.randint(1, 5))})
                else:
                    child = Element(doc, rng.choice(["a", "b", "c", "d"]))
                parent.append(child)
                next_frontier.append(child)
                built += 1
        frontier = next_frontier
    return doc


def bench_queries(args) -> dict:
    depth, fanout = (6, 8)
    budget = 4_000 if args.smoke else 40_000
    reps = 10 if args.smoke else 40
    doc = build_bench_document(depth, fanout, budget, args.seed)
    queries = [parse_select(text) for text in QUERIES]

    # Correctness first: identical bindings and identical meter charges,
    # query by query (the meter is the paper's cost measure — the index
    # must not change what a run *reports*, only how long it takes).
    for query in queries:
        fast_meter, slow_meter = TraversalMeter(), TraversalMeter()
        fast = evaluate_select(query, doc, fast_meter)
        with index_disabled():
            slow = evaluate_select(query, doc, slow_meter)
        fast_ids = [n.node_id for b in fast.bindings for n in b.nodes()]
        slow_ids = [n.node_id for b in slow.bindings for n in b.nodes()]
        assert fast_ids == slow_ids, f"result divergence on {query}"
        assert fast_meter.nodes_traversed == slow_meter.nodes_traversed, (
            f"meter divergence on {query}: "
            f"{fast_meter.nodes_traversed} != {slow_meter.nodes_traversed}"
        )

    before = PROF.snapshot()
    start = time.perf_counter()
    matched = 0
    for _ in range(reps):
        for query in queries:
            matched += len(evaluate_select(query, doc))
    indexed_time = time.perf_counter() - start
    delta = PROF.delta_since(before)
    hits = delta.get("query_index_hits", 0)
    walks = delta.get("query_tree_walks", 0)
    hit_rate = hits / (hits + walks) if hits + walks else 0.0

    start = time.perf_counter()
    with index_disabled():
        for _ in range(reps):
            for query in queries:
                evaluate_select(query, doc)
    walk_time = time.perf_counter() - start

    speedup = walk_time / indexed_time if indexed_time > 0 else float("inf")
    print(
        f"P1/A query eval: {doc.size()} nodes, {reps}x{len(queries)} queries, "
        f"{matched} matches -> indexed {indexed_time:.4f}s vs walk "
        f"{walk_time:.4f}s ({speedup:.1f}x, hit rate {hit_rate:.2%})"
    )
    return perf_record(
        "query_indexed_vs_walk",
        args.seed,
        indexed_time,
        speedup,
        index_hit_rate=hit_rate,
        depth=depth,
        fanout=fanout,
        nodes=doc.size(),
        reps=reps,
        queries=len(QUERIES),
        walk_wall_time=round(walk_time, 6),
    )


def bench_sweep(args) -> dict:
    base = ChaosConfig(seed=args.seed, txns=8 if args.smoke else 20, providers=4)
    seeds = range(4) if args.smoke else range(10)
    kwargs = dict(seeds=seeds, concurrencies=(2, 4), fault_rates=(0.2,))

    start = time.perf_counter()
    serial_table, serial_failures = chaos_sweep(
        base, metrics=MetricsCollector(), workers=1, **kwargs
    )
    serial_time = time.perf_counter() - start

    start = time.perf_counter()
    parallel_table, parallel_failures = chaos_sweep(
        base, metrics=MetricsCollector(), workers=args.workers, **kwargs
    )
    parallel_time = time.perf_counter() - start

    assert serial_table.render() == parallel_table.render(), (
        "parallel sweep rendered table diverged from serial"
    )
    assert stable_json(serial_table.to_dict()) == stable_json(
        parallel_table.to_dict()
    ), "parallel sweep JSON payload diverged from serial"
    assert len(serial_failures) == len(parallel_failures)

    speedup = serial_time / parallel_time if parallel_time > 0 else float("inf")
    cores = available_cores()
    print(
        f"P1/B C1 sweep: {len(list(seeds)) * 2} runs -> serial "
        f"{serial_time:.3f}s vs {args.workers} workers {parallel_time:.3f}s "
        f"({speedup:.2f}x on {cores} core(s)); output byte-identical"
    )
    return perf_record(
        "c1_sweep_serial_vs_parallel",
        args.seed,
        parallel_time,
        speedup,
        workers=args.workers,
        cores=cores,
        runs=len(list(seeds)) * 2,
        byte_identical=True,
        serial_wall_time=round(serial_time, 6),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run (used by the CI perf gate)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for Part B's parallel leg")
    args = parser.parse_args()

    query_rec = bench_queries(args)
    sweep_rec = bench_sweep(args)

    suffix = "_smoke" if args.smoke else ""
    path = publish_perf(
        f"BENCH_P1{suffix}.json",
        [query_rec, sweep_rec],
        smoke=args.smoke,
    )
    print(f"json artifact written: {path}")

    # -- gates ------------------------------------------------------------
    failed = []
    required = 1.0 if args.smoke else 2.0
    if query_rec["speedup"] <= required:
        failed.append(
            f"indexed query eval speedup {query_rec['speedup']}x <= {required}x"
        )
    # Byte-identity was asserted above; wall-time reduction is only a
    # fair ask when there are >= 2 cores to spread the sweep over.
    if available_cores() >= 2 and sweep_rec["speedup"] <= 1.0:
        failed.append(
            f"parallel sweep speedup {sweep_rec['speedup']}x <= 1x "
            f"on {available_cores()} cores"
        )
    if failed:
        for reason in failed:
            print(f"FAILED: {reason}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
