"""E7 — §3.2's cost measure: forward vs backward recovery in nodes affected.

"For AXML systems, the number of XML nodes affected (traversed) is
usually a good measure of the cost of an operation (forward or
compensating)."  We build linear invocation chains AP1→AP2→…→APn, fail
the service at each depth, and compare:

* backward recovery (no handlers): every peer from the failure point up
  to the root compensates — cost grows as the failure gets shallower
  relative to completed work below… here, as more ancestors must undo;
* forward recovery (a retry handler right above the failure): only the
  failed peer's own aborted attempt is compensated.

In this chain every peer completes its local work before the failure
strikes, so backward recovery always compensates the *whole* chain —
its cost is flat at the maximum.  Forward recovery compensates only the
failed subtree (the peers at and below the failure), so its cost
*decreases* with failure depth and never exceeds backward's.

Shape being checked: forward ≤ backward at every depth, with forward
strictly cheaper once any completed ancestor exists above the failure
("undo only as much as required"), and forward's cost monotonically
decreasing in failure depth.
"""

import pytest

from repro.sim.harness import ExperimentTable
from repro.sim.scenarios import build_topology, run_root_transaction
from repro.txn.recovery import FaultPolicy

from _util import publish

CHAIN_LENGTH = 6


def linear_topology(length: int):
    return {
        f"AP{i}": [(f"AP{i + 1}", f"S{i + 1}")] for i in range(1, length)
    }


def run_config(fail_depth: int, forward: bool):
    """Fail S<fail_depth> after its local work; optionally a retry handler
    sits at the invoking peer (depth-1)."""
    topology = linear_topology(CHAIN_LENGTH)
    scenario = build_topology(topology, super_peers=("AP1",))
    scenario.injector.fault_service(
        f"AP{fail_depth}", f"S{fail_depth}", "Crash", times=1, point="after_execute"
    )
    if forward:
        scenario.peer(f"AP{fail_depth - 1}").set_fault_policy(
            f"S{fail_depth}",
            [FaultPolicy(fault_names={"Crash"}, retry_times=1)],
        )
    txn, error = run_root_transaction(scenario)
    comp_nodes = sum(p.manager.compensation_cost for p in scenario.peers.values())
    return {
        "fail_depth": fail_depth,
        "recovery": "forward" if forward else "backward",
        "outcome": "recovered" if error is None else "aborted",
        "comp_nodes": comp_nodes,
        "local_aborts": scenario.metrics.get("local_aborts"),
    }


def run_sweep():
    rows = []
    for depth in range(2, CHAIN_LENGTH + 1):
        rows.append(run_config(depth, forward=False))
        rows.append(run_config(depth, forward=True))
    return rows


def test_e7_forward_vs_backward(benchmark):
    rows = benchmark(run_sweep)
    table = ExperimentTable(
        f"E7: recovery cost in XML nodes affected (chain of {CHAIN_LENGTH} peers)",
        ["fail_depth", "recovery", "outcome", "comp_nodes", "local_aborts"],
    )
    for row in rows:
        table.add_row(**row)
    by_key = {(r["fail_depth"], r["recovery"]): r for r in rows}
    for depth in range(2, CHAIN_LENGTH + 1):
        forward = by_key[(depth, "forward")]
        backward = by_key[(depth, "backward")]
        assert forward["outcome"] == "recovered"
        assert backward["outcome"] == "aborted"
        assert forward["comp_nodes"] <= backward["comp_nodes"]
        assert forward["local_aborts"] <= backward["local_aborts"]
        if depth > 2:
            # Completed ancestors exist above the failure: forward is
            # strictly cheaper ("undo only as much as required").
            assert forward["comp_nodes"] < backward["comp_nodes"]
    # Backward always compensates the whole chain (flat, maximal cost);
    # forward's cost shrinks as the failure moves deeper.
    backward_costs = [by_key[(d, "backward")]["comp_nodes"] for d in range(2, CHAIN_LENGTH + 1)]
    forward_costs = [by_key[(d, "forward")]["comp_nodes"] for d in range(2, CHAIN_LENGTH + 1)]
    assert len(set(backward_costs)) == 1
    assert forward_costs == sorted(forward_costs, reverse=True)
    assert forward_costs[-1] < forward_costs[0]
    table.add_note("forward recovery = retry handler at the peer above the failure")
    publish(table, "e7_forward_vs_backward.txt")
