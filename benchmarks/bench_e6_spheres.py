"""E6 — §3.3 spheres of atomicity: guarantee rate vs super-peer fraction.

For each super-peer fraction, random transactions draw participant sets
from a 20-peer pool; the sphere analysis decides whether atomicity is
guaranteed.  A second pair of columns turns on peer-independent
compensation with super-peer replicas — the configuration the paper
suggests makes atomicity guaranteeable despite churn.

Shape being checked: the plain guarantee rate rises monotonically with
the super-peer fraction and hits 1.0 exactly at fraction 1.0 ("atomicity
may still be guaranteed … if all the involved peers are super peers");
replicas + peer-independence pins the rate at 1.0 throughout.  An
empirical column validates the analysis against simulated aborts.
"""

import pytest

from repro.sim.harness import ExperimentTable
from repro.sim.rng import SeededRng
from repro.sim.workload import generate_participant_sets
from repro.txn.spheres import analyze_sphere, sphere_guarantee_rate

from _util import publish

POOL = [f"AP{i}" for i in range(1, 21)]
FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def empirical_check(participants, super_peers, rng, trials=10):
    """Simulated ground truth: kill each non-super participant with p=0.5
    and see whether compensation could still complete (peer-dependent).

    Analysis says 'guaranteed' must imply every simulated outcome
    completes; we return the observed completion rate.
    """
    completed = 0
    for _ in range(trials):
        dead = {
            p for p in participants if p not in super_peers and rng.coin(0.5)
        }
        completed += int(not dead)
    return completed / trials


def run_point(fraction: float, seed: int = 17, transactions: int = 200):
    rng = SeededRng(seed)
    super_count = int(round(fraction * len(POOL)))
    super_peers = set(POOL[:super_count])
    txns = generate_participant_sets(rng, POOL, transactions, 2, 6)
    plain = sphere_guarantee_rate(txns, super_peers)
    upgraded = sphere_guarantee_rate(
        txns,
        super_peers,
        peer_independent=True,
        replicas_on_super_peers={p: True for p in POOL},
    )
    # Empirical validation: for analyzed-guaranteed transactions, the
    # simulated completion rate must be 1.0.
    guaranteed_txns = [
        t for t in txns if analyze_sphere(t, super_peers).guaranteed
    ]
    empirical = (
        sum(empirical_check(t, super_peers, rng) for t in guaranteed_txns)
        / len(guaranteed_txns)
        if guaranteed_txns
        else 1.0
    )
    return {
        "super_frac": fraction,
        "guaranteed": plain,
        "indep+replica": upgraded,
        "empirical_ok": empirical,
    }


def test_e6_spheres(benchmark):
    rows = [run_point(f) for f in FRACTIONS[:-1]]
    rows.append(benchmark(run_point, FRACTIONS[-1]))
    table = ExperimentTable(
        "E6: atomicity guarantee rate vs super-peer fraction (20-peer pool)",
        ["super_frac", "guaranteed", "indep+replica", "empirical_ok"],
    )
    for row in rows:
        table.add_row(**row)
    values = [row["guaranteed"] for row in rows]
    assert values == sorted(values)  # monotone in the super-peer fraction
    assert rows[0]["guaranteed"] == 0.0
    assert rows[-1]["guaranteed"] == 1.0  # all super peers → guaranteed
    assert all(row["indep+replica"] == 1.0 for row in rows)
    assert all(row["empirical_ok"] == 1.0 for row in rows)
    table.add_note("empirical_ok: simulated churn never breaks an analyzed guarantee")
    publish(table, "e6_spheres.txt")
