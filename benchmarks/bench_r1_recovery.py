"""R1 — bounded recovery via checkpoints + WAL group commit.

Two measurements (DESIGN.md index row R1):

* Part A, recovery replay vs WAL length: a durable worker runs N
  committed one-invoke transactions, then crashes and rejoins.  Without
  checkpoints, recovery re-parses every entry frame ever logged —
  ``recovery_replay_entries`` grows linearly with N.  With
  ``checkpoint_every=K``, recovery loads the newest checkpoint and
  replays only the segment tail — bounded by K regardless of N.
* Part B, write-path group commit: a T1-style multi-invoke commit
  workload against a durable worker, with ``wal_batch=1`` (one physical
  flush per frame, the PR 5 path) vs a batched WAL (one multi-frame
  flush per batch, barriers at commit time) — the batched leg must
  issue far fewer physical flushes for the same logical appends.
  Note the batched leg relaxes ``flush_on_prepare``: with the barrier
  on, every share hand-off flushes the (1-entry) batch anyway, which is
  exactly the durability the protocol demands — group commit pays off
  on the ops *between* protocol messages, not across them.

Gates are deterministic (logical counters, not wall time): replay
counts must be exactly linear without checkpoints and ≤ the checkpoint
interval with them; batching must at least halve physical flushes.
Wall-clock times are recorded as informational context only.

Run:  python benchmarks/bench_r1_recovery.py [--smoke]
Out:  benchmarks/results/BENCH_R1[_smoke].json   (repro-bench-perf/1)
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time

from _util import perf_record, publish_perf

from repro.axml.document import AXMLDocument
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import UpdateService
from repro.txn.modes import DurabilityPolicy, RejoinMode


def _durable_world(directory: str, checkpoint_every: int):
    """Origin + one durable worker hosting a single update service."""
    network = SimNetwork()
    origin = AXMLPeer("Origin", network)
    worker = AXMLPeer(
        "Worker",
        network,
        durability=DurabilityPolicy(
            directory=directory,
            checkpoint_every=checkpoint_every,
            # Part A isolates checkpointing: a huge threshold keeps the
            # no-checkpoint leg from compacting segments behind our back.
            segment_max_frames=1 << 20,
        ),
    )
    worker.host_document(AXMLDocument.from_xml("<D><slots/></D>", name="D"))
    worker.host_service(UpdateService(
        ServiceDescriptor(
            "book", kind="update", params=(ParamSpec("c"),),
            target_document="D",
        ),
        '<action type="insert"><data><slot c="$c"/></data>'
        "<location>Select d from d in D//slots;</location></action>",
    ))
    return network, origin, worker


def _measure_recovery(wal_length: int, checkpoint_every: int):
    """Run *wal_length* committed txns, crash, rejoin; returns
    ``(replayed_entries, recovery_seconds)``."""
    scratch = tempfile.mkdtemp(prefix="bench-r1-")
    try:
        network, origin, worker = _durable_world(scratch, checkpoint_every)
        for i in range(wal_length):
            txn = origin.begin_transaction()
            origin.invoke(txn.txn_id, "Worker", "book", {"c": f"c{i}"})
            origin.commit(txn.txn_id)
        worker.crash()
        before = network.metrics.get("recovery_replay_entries")
        start = time.perf_counter()
        worker.rejoin(mode=RejoinMode.IN_DOUBT)
        elapsed = time.perf_counter() - start
        replayed = network.metrics.get("recovery_replay_entries") - before
        return replayed, elapsed
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def bench_recovery(args) -> dict:
    # Deliberately not multiples of the interval, so the checkpointed
    # leg always replays a non-empty tail (N mod interval entries).
    lengths = (35, 67) if args.smoke else (130, 270, 530, 1030)
    interval = 16 if args.smoke else 64
    rows = []
    for n in lengths:
        flat_replay, flat_time = _measure_recovery(n, checkpoint_every=interval)
        linear_replay, linear_time = _measure_recovery(n, checkpoint_every=0)
        rows.append({
            "wal_length": n,
            "replay_no_checkpoint": linear_replay,
            "replay_checkpointed": flat_replay,
            "recovery_no_checkpoint_s": round(linear_time, 6),
            "recovery_checkpointed_s": round(flat_time, 6),
        })
        print(
            f"R1/A recovery, WAL length {n}: replay "
            f"{linear_replay} entries ({linear_time:.4f}s) without "
            f"checkpoints vs {flat_replay} (<= {interval}) "
            f"({flat_time:.4f}s) with checkpoint_every={interval}"
        )
    last = rows[-1]
    speedup = (
        last["recovery_no_checkpoint_s"] / last["recovery_checkpointed_s"]
        if last["recovery_checkpointed_s"] > 0 else float("inf")
    )
    return perf_record(
        "recovery_replay_checkpointed_vs_full",
        args.seed,
        last["recovery_checkpointed_s"],
        round(speedup, 4),
        checkpoint_every=interval,
        lengths=list(lengths),
        rows=rows,
    )


def _commit_workload(policy: DurabilityPolicy, txns: int, ops: int):
    """Run *txns* committed transactions of *ops* invokes each against a
    worker using *policy*; returns ``(seconds, counters_dict)``."""
    scratch = tempfile.mkdtemp(prefix="bench-r1-")
    try:
        network = SimNetwork()
        origin = AXMLPeer("Origin", network)
        worker = AXMLPeer(
            "Worker", network,
            durability=DurabilityPolicy(
                directory=scratch,
                wal_batch=policy.wal_batch,
                flush_on_prepare=policy.flush_on_prepare,
            ),
        )
        worker.host_document(
            AXMLDocument.from_xml("<D><slots/></D>", name="D")
        )
        worker.host_service(UpdateService(
            ServiceDescriptor(
                "book", kind="update", params=(ParamSpec("c"),),
                target_document="D",
            ),
            '<action type="insert"><data><slot c="$c"/></data>'
            "<location>Select d from d in D//slots;</location></action>",
        ))
        start = time.perf_counter()
        for i in range(txns):
            txn = origin.begin_transaction()
            for j in range(ops):
                origin.invoke(
                    txn.txn_id, "Worker", "book", {"c": f"c{i}.{j}"}
                )
            origin.commit(txn.txn_id)
        elapsed = time.perf_counter() - start
        return elapsed, dict(network.metrics.snapshot())
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def bench_group_commit(args) -> dict:
    txns = 16 if args.smoke else 100
    ops = 4
    serial_time, serial_counters = _commit_workload(
        DurabilityPolicy(directory="x", wal_batch=1), txns, ops
    )
    # Batched leg: accumulate each transaction's entries and let the
    # commit-time tombstone barrier write them as one multi-frame flush.
    batched_time, batched_counters = _commit_workload(
        DurabilityPolicy(directory="x", wal_batch=32, flush_on_prepare=False),
        txns, ops,
    )

    appends = batched_counters.get("wal_appends", 0)
    batch_flushes = batched_counters.get("wal_batch_flushes", 0)
    serial_writes = (
        serial_counters.get("wal_appends", 0)
        + serial_counters.get("wal_tombstones", 0)
    )
    speedup = serial_time / batched_time if batched_time > 0 else float("inf")
    print(
        f"R1/B group commit: {appends} appends over {txns} txns -> "
        f"{serial_writes} physical writes unbatched ({serial_time:.4f}s) "
        f"vs {batch_flushes} batch flushes with wal_batch=32 "
        f"({batched_time:.4f}s)"
    )
    return perf_record(
        "t1_throughput_group_commit",
        args.seed,
        batched_time,
        round(speedup, 4),
        wal_batch=32,
        txns=txns,
        ops_per_txn=ops,
        wal_appends=appends,
        wal_batch_flushes=batch_flushes,
        unbatched_physical_writes=serial_writes,
        unbatched_wall_time=round(serial_time, 6),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run (used by the CI perf gate)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    recovery_rec = bench_recovery(args)
    commit_rec = bench_group_commit(args)

    suffix = "_smoke" if args.smoke else ""
    path = publish_perf(
        f"BENCH_R1{suffix}.json",
        [recovery_rec, commit_rec],
        smoke=args.smoke,
    )
    print(f"json artifact written: {path}")

    # -- gates (deterministic counters, not wall time) --------------------
    failed = []
    interval = recovery_rec["checkpoint_every"]
    for row in recovery_rec["rows"]:
        if row["replay_no_checkpoint"] != row["wal_length"]:
            failed.append(
                f"no-checkpoint replay {row['replay_no_checkpoint']} != "
                f"WAL length {row['wal_length']} (expected exactly linear)"
            )
        if row["replay_checkpointed"] > interval:
            failed.append(
                f"checkpointed replay {row['replay_checkpointed']} > "
                f"interval {interval} at WAL length {row['wal_length']}"
            )
    if commit_rec["wal_batch_flushes"] * 2 > commit_rec["wal_appends"]:
        failed.append(
            f"group commit flushed {commit_rec['wal_batch_flushes']} "
            f"batches for {commit_rec['wal_appends']} appends "
            f"(expected <= half)"
        )
    if failed:
        for reason in failed:
            print(f"FAILED: {reason}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
