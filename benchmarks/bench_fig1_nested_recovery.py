"""F1 — Fig. 1 (§3.2): the nested recovery protocol.

Reproduces the paper's walk-through: peer AP5 fails while processing S5;
"Abort T_A" propagates to AP6 (downward) and AP3 (upward); intermediate
peers may stop the propagation by forward recovery.  The table reports,
for each recovery configuration, how far the abort travelled, how much
completed work was discarded, and the compensation cost in the paper's
own unit — XML nodes affected.

Shape being checked: forward recovery at AP3 keeps the abort local to
the AP5/AP6 subtree ("undo only as much as required"), so its discarded
work and compensation cost are strictly below full backward recovery.
"""

import pytest

from repro.sim.harness import ExperimentTable
from repro.sim.scenarios import build_fig1, run_root_transaction
from repro.txn.recovery import FaultPolicy

from _util import publish, publish_json

#: config label → full metrics dump (histogram summaries included) from
#: the most recent run, exported alongside the table as JSON.
METRICS_BY_CONFIG = {}


def run_config(handler_at: str):
    """One Fig. 1 run: AP5 faults after its work; optional handler."""
    scenario = build_fig1()
    scenario.injector.fault_service(
        "AP5", "S5", "Crash", times=1, point="after_execute"
    )
    if handler_at:
        scenario.peer(handler_at).set_fault_policy(
            "S5", [FaultPolicy(fault_names={"Crash"}, retry_times=2)]
        )
    txn, error = run_root_transaction(scenario)
    compensation_cost = sum(
        peer.manager.compensation_cost for peer in scenario.peers.values()
    )
    config = f"handler@{handler_at}" if handler_at else "no handlers"
    METRICS_BY_CONFIG[config] = scenario.metrics.to_dict(include_values=False)
    return {
        "config": config,
        "outcome": "recovered" if error is None else "aborted",
        "local_aborts": scenario.metrics.get("local_aborts"),
        "abort_msgs": scenario.metrics.get("messages.abort"),
        "discarded": scenario.metrics.get("invocations_discarded"),
        "forward_recoveries": scenario.metrics.get("forward_recoveries"),
        "comp_nodes": compensation_cost,
    }


def test_fig1_nested_recovery(benchmark):
    rows = benchmark(lambda: [run_config(""), run_config("AP3")])
    table = ExperimentTable(
        "F1: Fig.1 nested recovery — AP5 fails while processing S5",
        [
            "config",
            "outcome",
            "local_aborts",
            "abort_msgs",
            "discarded",
            "forward_recoveries",
            "comp_nodes",
        ],
    )
    for row in rows:
        table.add_row(**row)
    backward, forward = rows
    # Paper shape: no handlers -> whole transaction aborts, abort messages
    # reach AP6, AP4 and AP2; handler at AP3 -> transaction survives and
    # compensation touches only the failed subtree.
    assert backward["outcome"] == "aborted"
    assert backward["abort_msgs"] == 3
    assert forward["outcome"] == "recovered"
    assert forward["forward_recoveries"] == 1
    assert forward["comp_nodes"] < backward["comp_nodes"]
    assert forward["discarded"] < backward["discarded"]
    table.add_note(
        "forward recovery at AP3 confines compensation to the AP5/AP6 subtree"
    )
    publish(table, "f1_nested_recovery.txt")
    publish_json(table, "f1_nested_recovery.json", metrics=METRICS_BY_CONFIG)
