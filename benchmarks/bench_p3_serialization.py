"""P3 — the serialization fast path: cached canonical XML, structural
clone and the memoized entry codec.

Two measurements (docs/PERF.md, "Serialization fast path"):

* **Part A — serialization reduction on the replicated checkpointed
  chaos workload.**  Seeded chaos runs with durability, checkpoints,
  group commit and ``replicas=3`` are executed twice each: fast path on
  (caches + structural clone + memoized entry codec) and fast path off
  (:func:`repro.xmlstore.fastpath.fast_path_disabled` — every encode
  recomputed, every clone a serialize→parse round trip).  Gates:

  - each seed's run summary is **byte-identical** across the two modes
    (the fast path is observably invisible),
  - zero oracle violations in both modes,
  - the fast path performs **>= 3x fewer** full-document tree renders
    (the ``serialize_tree_builds`` profiler counter) than the cold path,
  - wall time is not worse (only asked when the machine has >= 2 cores;
    loaded single-core CI boxes make wall gates meaningless).

* **Part B — structural clone vs. round-trip copy.**  Deep-copies a
  deep/wide P1-style document via :meth:`Document.clone_tree` and via
  the historical serialize→``parse_document``→``rebind_ids`` route, and
  requires the two copies to serialize **byte-identically** (ids
  included).  Wall times are informational.

Run:  python benchmarks/bench_p3_serialization.py [--smoke] [--seed N]
Out:  benchmarks/results/BENCH_P3[_smoke].json   (repro-bench-perf/1)
"""

from __future__ import annotations

import argparse
import sys
import time

from _util import perf_record, publish_perf

from repro.chaos import ChaosConfig, run_chaos
from repro.chaos.shrink import summary_text
from repro.obs.prof import PROF
from repro.sim.parallel import available_cores
from repro.sim.rng import SeededRng
from repro.xmlstore.fastpath import fast_path_disabled
from repro.xmlstore.names import QName
from repro.xmlstore.nodes import Document, Element
from repro.xmlstore.parser import parse_document
from repro.xmlstore.serializer import rebind_ids, serialize

#: The fast-path effectiveness counters Part A reports (all of them are
#: summary-local — see ``repro.obs.prof.SUMMARY_LOCAL_COUNTERS`` — so
#: they are read straight from :data:`PROF` deltas, never from the run
#: summary, which must stay byte-identical across modes).
FASTPATH_COUNTERS = (
    "serialize_tree_builds",
    "serialize_cache_hits",
    "serialize_cache_misses",
    "serialize_digest_hits",
    "serialize_digest_misses",
    "clone_fast",
    "clone_fallback",
    "entry_codec_hits",
    "entry_codec_misses",
    "replica_digest_matches",
)


def _measured_run(config: ChaosConfig):
    """One chaos run returning (summary text, violations, counter deltas,
    wall seconds)."""
    before = PROF.snapshot()
    start = time.perf_counter()
    result = run_chaos(config)
    elapsed = time.perf_counter() - start
    delta = PROF.delta_since(before)
    counters = {name: delta.get(name, 0) for name in FASTPATH_COUNTERS}
    return summary_text(result), len(result.violations), counters, elapsed


def bench_serialization_reduction(args) -> dict:
    """Part A: >= 3x fewer tree renders, byte-identical summaries."""
    seeds = range(1, 2) if args.smoke else range(1, 4)
    txns = 16 if args.smoke else 20
    ops = 4 if args.smoke else 5
    rows = []
    builds_on_total = 0
    builds_off_total = 0
    wall_on_total = 0.0
    wall_off_total = 0.0
    violations_total = 0
    mismatched_summaries = 0
    for seed in seeds:
        config = ChaosConfig(
            seed=seed, txns=txns, ops_per_txn=ops,
            fault_rate=0.2, crash_rate=0.3,
            durability=True, checkpoint_every=4, wal_batch=4,
            replicas=3, ship_batch=2,
        )
        summary_on, viol_on, on, wall_on = _measured_run(config)
        with fast_path_disabled():
            summary_off, viol_off, off, wall_off = _measured_run(config)
        identical = summary_on == summary_off
        mismatched_summaries += 0 if identical else 1
        violations_total += viol_on + viol_off
        builds_on = on["serialize_tree_builds"]
        builds_off = off["serialize_tree_builds"]
        builds_on_total += builds_on
        builds_off_total += builds_off
        wall_on_total += wall_on
        wall_off_total += wall_off
        ratio = builds_off / builds_on if builds_on else float("inf")
        rows.append({
            "seed": seed,
            "summary_identical": identical,
            "violations_on": viol_on,
            "violations_off": viol_off,
            "builds_on": builds_on,
            "builds_off": builds_off,
            "build_ratio": round(ratio, 2),
            "counters_on": on,
        })
        print(
            f"P3/A seed {seed}: renders {builds_off} cold vs {builds_on} "
            f"cached ({ratio:.2f}x fewer), {on['entry_codec_hits']} entry "
            f"frames reused, {on['clone_fast']} fast clones "
            f"({on['clone_fallback']} fallbacks), summary identical={identical}"
        )
    build_ratio = (
        builds_off_total / builds_on_total if builds_on_total else float("inf")
    )
    wall_speedup = wall_off_total / wall_on_total if wall_on_total else float("inf")
    print(
        f"P3/A total: {builds_off_total} -> {builds_on_total} renders "
        f"({build_ratio:.2f}x reduction), wall {wall_off_total:.3f}s -> "
        f"{wall_on_total:.3f}s ({wall_speedup:.2f}x)"
    )
    return perf_record(
        "serialization_reduction",
        args.seed,
        wall_on_total,
        round(build_ratio, 4),
        seeds=list(seeds),
        txns_per_seed=txns,
        ops_per_txn=ops,
        replicas=3,
        builds_on=builds_on_total,
        builds_off=builds_off_total,
        wall_speedup=round(wall_speedup, 4),
        cold_wall_time=round(wall_off_total, 6),
        violations_total=violations_total,
        mismatched_summaries=mismatched_summaries,
        rows=rows,
    )


def build_clone_document(depth: int, fanout: int, budget: int, seed: int) -> Document:
    """A seeded deep/wide document (P1's generator shape)."""
    rng = SeededRng(seed)
    doc = Document("Bench")
    root = doc.create_root(QName("Bench"))
    frontier = [root]
    built = 1
    for _level in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                if built >= budget:
                    return doc
                child = Element(
                    doc, rng.choice(["a", "b", "c", "d"]),
                    {"rank": str(rng.randint(1, 5))},
                )
                parent.append(child)
                next_frontier.append(child)
                built += 1
        frontier = next_frontier
    return doc


def bench_structural_clone(args) -> dict:
    """Part B: clone_tree ≡ the serialize→parse round trip, faster."""
    budget = 2_000 if args.smoke else 20_000
    reps = 3 if args.smoke else 5
    doc = build_clone_document(depth=6, fanout=8, budget=budget, seed=args.seed)
    reference = serialize(doc, include_ids=True)

    start = time.perf_counter()
    for _ in range(reps):
        fast_copy = doc.clone_tree(preserve_ids=True)
    fast_time = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(reps):
        # roundtrip-ok: this IS the measured baseline — the historical
        # copy route Part B compares the structural clone against.
        slow_copy = parse_document(reference, name=doc.name)
        rebind_ids(slow_copy)
    slow_time = time.perf_counter() - start

    identical = (
        serialize(fast_copy, include_ids=True) == reference
        and serialize(slow_copy, include_ids=True) == reference
    )
    speedup = slow_time / fast_time if fast_time > 0 else float("inf")
    print(
        f"P3/B clone: {doc.size()} nodes x{reps} -> structural "
        f"{fast_time:.4f}s vs round trip {slow_time:.4f}s "
        f"({speedup:.1f}x), byte-identical={identical}"
    )
    return perf_record(
        "structural_clone_vs_roundtrip",
        args.seed,
        fast_time,
        speedup,
        nodes=doc.size(),
        reps=reps,
        byte_identical=identical,
        roundtrip_wall_time=round(slow_time, 6),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run (used by the CI perf gate)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    reduction_rec = bench_serialization_reduction(args)
    clone_rec = bench_structural_clone(args)

    suffix = "_smoke" if args.smoke else ""
    path = publish_perf(
        f"BENCH_P3{suffix}.json",
        [reduction_rec, clone_rec],
        smoke=args.smoke,
    )
    print(f"json artifact written: {path}")

    # -- gates (deterministic counters first, wall time only with cores) --
    failed = []
    if reduction_rec["mismatched_summaries"] != 0:
        failed.append(
            f"{reduction_rec['mismatched_summaries']} seeds produced "
            f"different run summaries with the fast path on vs off"
        )
    if reduction_rec["violations_total"] != 0:
        failed.append(
            f"chaos runs reported {reduction_rec['violations_total']} "
            f"oracle violations (expected 0)"
        )
    if reduction_rec["speedup"] < 3.0:
        failed.append(
            f"serialization reduction {reduction_rec['speedup']}x < 3x "
            f"({reduction_rec['builds_off']} cold vs "
            f"{reduction_rec['builds_on']} cached renders)"
        )
    if not clone_rec["byte_identical"]:
        failed.append("structural clone output diverged from the round trip")
    # Wall time is only a fair ask when the machine has >= 2 cores; on a
    # loaded single-core box the cold/cached runs contend with the world.
    if available_cores() >= 2 and reduction_rec["wall_speedup"] <= 1.0:
        failed.append(
            f"fast path wall speedup {reduction_rec['wall_speedup']}x <= 1x "
            f"on {available_cores()} cores"
        )
    if failed:
        for reason in failed:
            print(f"FAILED: {reason}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
