"""F2 — Fig. 2 (§3.3): the four disconnection cases, chaining vs naive.

One row per (case, protocol).  Shape being checked, per the paper's
objective — "minimize loss of effort by detecting the disconnection as
soon as possible and reuse already performed work as much as possible":

* (b): chaining redirects the orphan's results and reuses them; naive
  discards the completed work;
* (c): chaining informs the dead peer's descendants, cancelling their
  pending effort; naive lets them burn every unit;
* (d): only chaining lets a sibling alert the dead peer's relatives.
"""

import pytest

from repro.sim.harness import ExperimentTable
from repro.sim.scenarios import build_fig2, run_root_transaction
from repro.txn.disconnection import (
    run_case_c_child_disconnection,
    run_case_d_sibling_disconnection,
)
from repro.txn.recovery import DISCONNECT_FAULT, FaultPolicy

from _util import publish, publish_json

#: (case, protocol) label → metrics dump (histogram summaries included)
#: from the most recent run, exported alongside the table as JSON.
METRICS_BY_CASE = {}


def _stash(case: str, chaining: bool, scenario) -> None:
    label = f"{case}:{'chaining' if chaining else 'naive'}"
    METRICS_BY_CASE[label] = scenario.metrics.to_dict(include_values=False)


def _fig2(chaining: bool, with_replacement: bool = False):
    extra = ("APX",) if with_replacement else ()
    scenario = build_fig2(extra_peers=extra, chaining=chaining)
    if with_replacement:
        scenario.replication.replicate_service("S3", "APX")
        scenario.replication.replicate_document("D3", "APX")
        scenario.peer("AP2").set_fault_policy(
            "S3",
            [FaultPolicy(fault_names={DISCONNECT_FAULT}, retry_times=1,
                         alternative_peer="APX")],
        )
    return scenario


def run_case_b(chaining: bool):
    scenario = _fig2(chaining, with_replacement=True)
    scenario.injector.disconnect_peer_during("AP3", "AP6", "S6", "after_local_work")
    txn, error = run_root_transaction(scenario)
    _stash("b", chaining, scenario)
    return {
        "case": "b:parent-dies",
        "protocol": "chaining" if chaining else "naive",
        "recovered": int(error is None),
        "redirected": scenario.metrics.get("results_redirected"),
        "reused": scenario.metrics.get("invocations_reused"),
        "discarded": scenario.metrics.get("invocations_discarded"),
        "wasted_units": scenario.metrics.get("work_units_wasted"),
        "detect_s": scenario.metrics.detection_latency("AP3"),
    }


def run_case_c(chaining: bool):
    scenario = _fig2(chaining)
    txn, _ = run_root_transaction(scenario)
    scenario.peer("AP6").add_pending_work(txn.txn_id, units=20, unit_duration=0.05)
    if not chaining:
        # Ground truth for waste accounting: the txn is doomed either way.
        scenario.peer("AP6").known_doomed.add(txn.txn_id)
    scenario.network.disconnect("AP3")
    report = run_case_c_child_disconnection(scenario.peer("AP2"), txn.txn_id)
    scenario.network.events.run_until(scenario.network.clock.now + 5.0)
    _stash("c", chaining, scenario)
    return {
        "case": "c:child-dies",
        "protocol": "chaining" if chaining else "naive",
        "recovered": int(report.recovered),
        "redirected": 0,
        "reused": 0,
        "discarded": scenario.metrics.get("invocations_discarded"),
        "wasted_units": scenario.metrics.get("work_units_wasted"),
        "detect_s": scenario.metrics.detection_latency("AP3"),
    }


def run_case_d(chaining: bool):
    scenario = _fig2(chaining)
    txn, _ = run_root_transaction(scenario)
    scenario.network.disconnect("AP3")
    report = run_case_d_sibling_disconnection(scenario.peer("AP4"), txn.txn_id, "AP3")
    informed = int(txn.txn_id in scenario.peer("AP2").known_doomed) + int(
        txn.txn_id in scenario.peer("AP6").known_doomed
    )
    _stash("d", chaining, scenario)
    return {
        "case": "d:sibling-silent",
        "protocol": "chaining" if chaining else "naive",
        "recovered": informed,
        "redirected": 0,
        "reused": 0,
        "discarded": scenario.metrics.get("invocations_discarded"),
        "wasted_units": scenario.metrics.get("work_units_wasted"),
        "detect_s": scenario.metrics.detection_latency("AP3"),
    }


def all_cases():
    rows = []
    for chaining in (True, False):
        rows.append(run_case_b(chaining))
        rows.append(run_case_c(chaining))
        rows.append(run_case_d(chaining))
    return rows


def test_fig2_disconnection_cases(benchmark):
    rows = benchmark(all_cases)
    table = ExperimentTable(
        "F2: Fig.2 disconnection cases — chaining vs naive",
        [
            "case",
            "protocol",
            "recovered",
            "redirected",
            "reused",
            "discarded",
            "wasted_units",
            "detect_s",
        ],
    )
    for row in rows:
        table.add_row(**row)
    by_key = {(r["case"], r["protocol"]): r for r in rows}
    # (b): chaining reuses, naive discards.
    assert by_key[("b:parent-dies", "chaining")]["reused"] == 1
    assert by_key[("b:parent-dies", "chaining")]["discarded"] == 0
    assert by_key[("b:parent-dies", "naive")]["reused"] == 0
    assert by_key[("b:parent-dies", "naive")]["discarded"] >= 1
    # (c): chaining saves the orphan's pending effort.
    assert by_key[("c:child-dies", "chaining")]["wasted_units"] == 0
    assert by_key[("c:child-dies", "naive")]["wasted_units"] == 20
    # (d): only chaining informs relatives.
    assert by_key[("d:sibling-silent", "chaining")]["recovered"] == 2
    assert by_key[("d:sibling-silent", "naive")]["recovered"] == 0
    table.add_note("recovered column: (b) txn survived, (d) relatives informed")
    publish(table, "f2_disconnection.txt")
    publish_json(table, "f2_disconnection.json", metrics=METRICS_BY_CASE)
