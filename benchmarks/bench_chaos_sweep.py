"""C1 — atomicity under seeded chaos: the 50-run oracle sweep.

Sweeps the chaos harness over 25 seeds x 2 concurrency levels at fault
rate 0.2 (every run has planned faults) and asserts the atomicity
oracle finds **zero** violations — the paper's relaxed-atomicity
contract holds across 50 distinct fault schedules: service faults at
random depths, timed and protocol-point disconnections, and dropped or
delayed §3.3 messages, overlaid on concurrent workloads.

Run:  python benchmarks/bench_chaos_sweep.py [--smoke] [--fault-rate R]

Everything is seeded: the same parameters produce a byte-identical
table and JSON artifact on every run, independent of PYTHONHASHSEED.
"""

import argparse
import sys

from repro.chaos import ChaosConfig, chaos_sweep
from repro.sim.metrics import MetricsCollector

from _util import publish, publish_json


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep (used by CI)")
    parser.add_argument("--fault-rate", type=float, default=0.2)
    args = parser.parse_args()

    seeds = range(3) if args.smoke else range(25)
    metrics = MetricsCollector()
    table, failures = chaos_sweep(
        ChaosConfig(fault_rate=args.fault_rate),
        seeds=seeds,
        concurrencies=(2, 4),
        fault_rates=(args.fault_rate,),
        metrics=metrics,
    )

    suffix = "_smoke" if args.smoke else ""
    publish(table, f"c1_chaos_sweep{suffix}.txt")
    path = publish_json(
        table,
        f"c1_chaos_sweep{suffix}.json",
        fault_rate=args.fault_rate,
        chaos_runs=metrics.get("chaos_runs"),
        chaos_violations=metrics.get("chaos_violations"),
    )
    print(f"\njson artifact written: {path}")
    print(
        f"chaos_runs = {metrics.get('chaos_runs')}  "
        f"chaos_violations = {metrics.get('chaos_violations')}"
    )

    # The claim under test: no schedule in the sweep breaks atomicity.
    if failures:
        print(f"FAILED: {len(failures)} runs reported violations", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
