"""S1 — elastic sharding: placement scaling and migration disruption.

Three measurements (docs/SHARDING.md):

* Part A, ring scaling: a 256-key keyspace placed on rings of 2..16
  members.  Aggregate capacity scales with the peer count because the
  *per-peer* primary share stays within a bounded factor of the ideal
  ``K/N`` — the balance factor is gated, and one member joining moves
  at most a bounded fraction of the keys (minimal disruption), all of
  them to the new member.  Lookup wall-throughput is informational.
* Part B, live-migration disruption: one shard migrates while
  transactions keep committing.  The quiescence barrier defers exactly
  the transactions in flight at the barrier (gated ≤ that bound), and
  the WAL tail shipped to the target between copy and cutover is gated
  to exactly the entries committed in that window — never a re-copy.
* Part C, sharded chaos sweep: seeded chaos runs with the ring,
  spares joining mid-run, migration crash faults, and replicas on.
  Zero oracle violations (including the shard predicates) and
  byte-identical reruns are gated; migration counters are recorded.

Gates are deterministic (logical counters, not wall time); wall-clock
times are informational only.

Run:  python benchmarks/bench_s1_sharding.py [--smoke]
Out:  benchmarks/results/BENCH_S1[_smoke].json   (repro-bench-perf/1)
"""

from __future__ import annotations

import argparse
import math
import sys
import time

from _util import perf_record, publish_perf

from repro.axml.document import AXMLDocument
from repro.chaos import ChaosConfig, run_chaos
from repro.chaos.shrink import summary_text
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.p2p.sharding import ShardCoordinator, ShardRing
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import UpdateService

D1 = "<D1><items/></D1>"

ADD_ITEM = (
    '<action type="insert"><data><item>$v</item></data>'
    "<location>Select d from d in D1//items;</location></action>"
)

#: Max allowed ratio of the largest per-peer primary share to the ideal
#: K/N share (vnodes=16 placement variance; measured ≤ ~2.1 across the
#: gated ring sizes).
BALANCE_BOUND = 3.0

#: Join disruption bound as a multiple of ceil(K / (N+1)).
DISRUPTION_SLACK = 2.0


def bench_ring_scaling(args) -> dict:
    """Part A: bounded per-peer load and join disruption as N grows."""
    key_count = 64 if args.smoke else 256
    sizes = (2, 4) if args.smoke else (2, 4, 8, 16)
    keys = [f"K{i:04d}" for i in range(key_count)]
    rows = []
    start = time.perf_counter()
    for size in sizes:
        members = [f"AP{j}" for j in range(1, size + 1)]
        ring = ShardRing(seed=args.seed, members=members)
        shares = {member: 0 for member in members}
        lookup_start = time.perf_counter()
        for key in keys:
            shares[ring.primary(key)] += 1
        lookup_elapsed = time.perf_counter() - lookup_start
        ideal = key_count / size
        balance = max(shares.values()) / ideal
        before = {key: ring.primary(key) for key in keys}
        ring.add_member("NEW")
        moved = [key for key in keys if ring.primary(key) != before[key]]
        rows.append({
            "members": size,
            "max_share": max(shares.values()),
            "ideal_share": round(ideal, 1),
            "balance_factor": round(balance, 3),
            "moved_on_join": len(moved),
            "join_bound": math.ceil(
                DISRUPTION_SLACK * math.ceil(key_count / (size + 1))
            ),
            "moved_to_new_only": all(
                ring.primary(key) == "NEW" for key in moved
            ),
            "lookups_per_sec": round(key_count / max(lookup_elapsed, 1e-9)),
        })
        print(
            f"S1/A N={size}: max share {max(shares.values())}/{ideal:.0f} "
            f"(balance {balance:.2f}x), join moved {len(moved)} keys "
            f"(bound {rows[-1]['join_bound']})"
        )
    elapsed = time.perf_counter() - start
    return perf_record(
        "ring_scaling",
        args.seed,
        elapsed,
        1.0,  # gate quantity is the balance factor, not a ratio
        key_count=key_count,
        balance_bound=BALANCE_BOUND,
        rows=rows,
    )


def bench_migration_disruption(args) -> dict:
    """Part B: the barrier defers in-flight work; the tail ships exactly."""
    network = SimNetwork()
    replication = ReplicationManager(network)
    peers = {
        pid: AXMLPeer(pid, network) for pid in ("C1", "AP1", "AP2", "AP3")
    }
    ring = ShardRing(seed=42, members=["AP1", "AP2", "AP3"], replicas=1)
    # A long copy→cutover gap so committed entries pile into the tail.
    coordinator = ShardCoordinator(
        network, replication, ring, cutover_delay=1.0, max_defers=100
    )
    primary = ring.primary("D1")  # AP3 with seed 42 (pinned by the tests)
    peers[primary].host_document(AXMLDocument.from_xml(D1, name="D1"))
    peers[primary].host_service(UpdateService(
        ServiceDescriptor(
            "addItem", kind="update", params=(ParamSpec("v"),),
            target_document="D1",
        ),
        ADD_ITEM,
    ))
    replication.register_primary("D1", primary)
    replication.register_service("addItem", primary)
    coordinator.register_shard("D1", "addItem")
    for replica in ring.lookup("D1")[1:]:
        replication.replicate_document("D1", replica)
        replication.replicate_service("addItem", replica)
    peers["N15"] = AXMLPeer("N15", network)  # becomes D1's primary on join

    # One transaction in flight at the barrier...
    open_txn = peers["C1"].begin_transaction()
    peers["C1"].invoke(open_txn.txn_id, primary, "addItem", {"v": "barrier"})
    in_flight_at_barrier = 1
    coordinator.add_peer("N15")
    network.events.schedule(
        0.3, lambda: peers["C1"].commit(open_txn.txn_id)
    )

    # ...and E transactions committing between copy and cutover: their
    # entries are the WAL tail the target must receive.
    tail_txns = 3 if args.smoke else 8

    def commit_one(value):
        txn = peers["C1"].begin_transaction()
        peers["C1"].invoke(txn.txn_id, primary, "addItem", {"v": value})
        peers["C1"].commit(txn.txn_id)

    for i in range(tail_txns):
        network.events.schedule(
            0.45 + 0.05 * i, lambda v=f"tail{i}": commit_one(v)
        )

    start = time.perf_counter()
    network.events.run_all()
    elapsed = time.perf_counter() - start

    deferred = network.metrics.get("migration_deferred_txns")
    shipped = network.metrics.get("migration_entries_shipped")
    migrations = network.metrics.get("migrations")
    target_xml = peers["N15"].get_axml_document("D1").to_xml()
    tail_applied = sum(1 for i in range(tail_txns) if f"tail{i}" in target_xml)
    print(
        f"S1/B migration: {deferred} deferred txns "
        f"(in-flight bound {in_flight_at_barrier}), {shipped} tail entries "
        f"shipped for {tail_txns} tail commits, {migrations} migrations, "
        f"{tail_applied}/{tail_txns} tail effects on the target "
        f"({elapsed:.4f}s)"
    )
    return perf_record(
        "migration_disruption",
        args.seed,
        elapsed,
        1.0,
        in_flight_at_barrier=in_flight_at_barrier,
        migration_deferred_txns=deferred,
        tail_txns=tail_txns,
        migration_entries_shipped=shipped,
        tail_applied_on_target=tail_applied,
        migrations=migrations,
        new_primary=replication.directory.primary("D1"),
    )


def bench_sharded_sweep(args) -> dict:
    """Part C: zero-violation, deterministic sharded chaos sweep."""
    seeds = range(1, 4) if args.smoke else range(1, 11)
    txns = 6 if args.smoke else 10
    rows = []
    violations_total = 0
    nondeterministic = 0
    start = time.perf_counter()
    for seed in seeds:
        config = ChaosConfig(
            seed=seed, txns=txns, providers=3, fault_rate=0.2,
            crash_rate=0.3, replicas=1, sharding=True, shard_spares=1,
            durability="wal",
        )
        result = run_chaos(config)
        rerun = run_chaos(config)
        identical = summary_text(result) == summary_text(rerun)
        nondeterministic += 0 if identical else 1
        violations_total += len(result.violations)
        counters = result.summary["metrics"]["counters"]
        rows.append({
            "seed": seed,
            "violations": len(result.violations),
            "deterministic": identical,
            "migrations": counters.get("migrations", 0),
            "migration_aborts": counters.get("migration_aborts", 0),
            "migration_deferred_txns": counters.get(
                "migration_deferred_txns", 0
            ),
            "migration_entries_shipped": counters.get(
                "migration_entries_shipped", 0
            ),
            "ring_moves": counters.get("ring_moves", 0),
            "chains_rewritten": counters.get("chains_rewritten", 0),
        })
        print(
            f"S1/C seed {seed}: {len(result.violations)} violations, "
            f"{rows[-1]['migrations']} migrations "
            f"({rows[-1]['migration_aborts']} aborted), "
            f"{rows[-1]['migration_deferred_txns']} deferred txns, "
            f"deterministic={identical}"
        )
    elapsed = time.perf_counter() - start
    return perf_record(
        "sharded_chaos_sweep",
        args.seed,
        elapsed,
        1.0,
        seeds=list(seeds),
        txns_per_seed=txns,
        concurrency=ChaosConfig.concurrency,
        violations_total=violations_total,
        nondeterministic_seeds=nondeterministic,
        rows=rows,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run (used by the CI perf gate)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    scaling_rec = bench_ring_scaling(args)
    migration_rec = bench_migration_disruption(args)
    sweep_rec = bench_sharded_sweep(args)

    suffix = "_smoke" if args.smoke else ""
    path = publish_perf(
        f"BENCH_S1{suffix}.json",
        [scaling_rec, migration_rec, sweep_rec],
        smoke=args.smoke,
    )
    print(f"json artifact written: {path}")

    # -- gates (deterministic counters, not wall time) --------------------
    failed = []
    for row in scaling_rec["rows"]:
        if row["balance_factor"] > BALANCE_BOUND:
            failed.append(
                f"N={row['members']}: balance factor "
                f"{row['balance_factor']} exceeds {BALANCE_BOUND}"
            )
        if row["moved_on_join"] > row["join_bound"]:
            failed.append(
                f"N={row['members']}: join moved {row['moved_on_join']} "
                f"keys, bound {row['join_bound']}"
            )
        if not row["moved_to_new_only"]:
            failed.append(
                f"N={row['members']}: a join moved keys to an old member"
            )
    if migration_rec["migrations"] != 1:
        failed.append(
            f"migration bench completed {migration_rec['migrations']} "
            f"migrations (expected exactly 1)"
        )
    if migration_rec["migration_deferred_txns"] > migration_rec[
        "in_flight_at_barrier"
    ]:
        failed.append(
            f"barrier deferred {migration_rec['migration_deferred_txns']} "
            f"txns for {migration_rec['in_flight_at_barrier']} in flight"
        )
    shipped = migration_rec["migration_entries_shipped"]
    tail = migration_rec["tail_txns"]
    if not (1 <= shipped <= tail):
        failed.append(
            f"migration shipped {shipped} tail entries for {tail} tail "
            f"commits (expected 1 <= shipped <= tail — never a re-copy)"
        )
    if migration_rec["tail_applied_on_target"] != tail:
        failed.append(
            f"only {migration_rec['tail_applied_on_target']}/{tail} tail "
            f"commits reached the migrated shard"
        )
    if sweep_rec["violations_total"] != 0:
        failed.append(
            f"sharded sweep reported {sweep_rec['violations_total']} "
            f"oracle violations (expected 0)"
        )
    if sweep_rec["nondeterministic_seeds"] != 0:
        failed.append(
            f"{sweep_rec['nondeterministic_seeds']} seeds were not "
            f"byte-identical on rerun"
        )
    if not any(row["migrations"] > 0 for row in sweep_rec["rows"]):
        failed.append("sweep never completed a migration (weak coverage)")
    for row in sweep_rec["rows"]:
        churn = row["migrations"] + row["migration_aborts"]
        bound = churn * sweep_rec["concurrency"]
        if row["migration_deferred_txns"] > bound:
            failed.append(
                f"seed {row['seed']}: {row['migration_deferred_txns']} "
                f"deferred txns exceeds churn x concurrency ({bound})"
            )
    if failed:
        for reason in failed:
            print(f"FAILED: {reason}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
