"""A3 (ablation) — extended chaining: uncles and cousins.

The conclusion's future work: "Currently, the 'chaining' mechanism is
restricted to the parent, children and sibling peers.  We are exploring
the feasibility of extending the same to uncles, cousins, etc."

In a bushy tree, a disconnection dooms the transaction for *every*
branch, but the §3.3 protocol only informs the dead peer's own subtree
— parallel branches keep burning effort until the abort reaches them.
The extended scope additionally alerts the dead peer's grandparent,
uncles and cousins.

Shape being checked: with pending continuous work spread over all
branches, extended scope informs strictly more peers and wastes strictly
fewer work units than immediate scope, at the price of a few more
notification messages.
"""

import pytest

from repro.sim.harness import ExperimentTable
from repro.sim.scenarios import build_topology, run_root_transaction
from repro.txn.disconnection import run_case_c_child_disconnection

from _util import publish

#: A bushy 3-level tree: AP2..AP4 under the root, three children each.
BUSHY = {
    "AP1": [("AP2", "S2"), ("AP3", "S3"), ("AP4", "S4")],
    "AP2": [("AP5", "S5"), ("AP6", "S6")],
    "AP3": [("AP7", "S7"), ("AP8", "S8")],
    "AP4": [("AP9", "S9"), ("AP10", "S10")],
}


def run_point(scope: str, units_per_peer: int = 10):
    scenario = build_topology(BUSHY, super_peers=("AP1",), chain_scope=scope)
    txn, _ = run_root_transaction(scenario)
    # Every leaf/branch holds pending continuous work; the txn is doomed
    # once AP3 dies, whether or not a peer has been told.
    workers = [p for p in scenario.peers if p not in ("AP1", "AP3")]
    for peer_id in workers:
        peer = scenario.peer(peer_id)
        peer.known_doomed.add(txn.txn_id)  # ground truth for waste metering
        peer.add_pending_work(txn.txn_id, units=units_per_peer, unit_duration=0.05)
    scenario.network.disconnect("AP3")
    run_case_c_child_disconnection(scenario.peer("AP1"), txn.txn_id)
    scenario.network.events.run_until(scenario.network.clock.now + 10.0)
    return {
        "scope": scope,
        "informed": scenario.metrics.get("descendants_informed"),
        "wasted_units": scenario.metrics.get("work_units_wasted"),
        "notices": scenario.metrics.get("messages.disconnect_notice"),
    }


def test_a3_extended_chaining(benchmark):
    immediate = run_point("immediate")
    extended = benchmark(run_point, "extended")
    table = ExperimentTable(
        "A3 (ablation): disconnection-notice scope — immediate vs extended",
        ["scope", "informed", "wasted_units", "notices"],
    )
    table.add_row(**immediate)
    table.add_row(**extended)
    # Extended informs the dead peer's uncles/cousins too...
    assert extended["informed"] > immediate["informed"]
    # ...which cancels their pending effort.
    assert extended["wasted_units"] < immediate["wasted_units"]
    # The cost is a handful of extra notices, not a broadcast storm.
    assert extended["notices"] <= immediate["notices"] + 8
    table.add_note("victim AP3 in a bushy 10-peer tree; 10 work units per peer")
    publish(table, "a3_extended_chaining.txt")
