"""E3 — compensation log vs whole-document snapshots (traditional undo).

Sweeps document size at fixed transaction length.  Shape being checked:
snapshot cost grows linearly with document size while the operation
log's footprint tracks only the touched data — so the ratio
snapshot/log diverges with document size, the scaling argument for
log-based compensation.  (Snapshots are also impossible across
autonomous peers; this bench quantifies the local cost alone.)
"""

import pytest

from repro.baselines.snapshot_rollback import SnapshotRollback
from repro.errors import UpdateError
from repro.query.update import apply_action
from repro.sim.harness import ExperimentTable, ratio
from repro.sim.rng import SeededRng
from repro.sim.workload import OperationMix, generate_catalogue, generate_operation
from repro.txn.operations import TransactionalOperation, build_compensation
from repro.txn.wal import OperationLog
from repro.xmlstore.serializer import canonical

from _util import publish

TXN_LENGTH = 8
UPDATE_MIX = OperationMix(insert=0.34, delete=0.33, replace=0.33, query=0.0)


def run_point(item_count: int, seed: int = 11):
    rng = SeededRng(seed)
    # --- log-based run --------------------------------------------------
    axml = generate_catalogue(rng, item_count=item_count, name="Cat")
    doc_nodes = axml.document.size()
    log = OperationLog("P")
    pre = canonical(axml.document)
    for _ in range(TXN_LENGTH):
        action = generate_operation(rng, axml, UPDATE_MIX, selective=True)
        try:
            TransactionalOperation("T1", action).execute(axml, None, log)
        except UpdateError:
            continue
    log_bytes = log.approximate_bytes("T1")
    for plan in build_compensation(log, "T1"):
        plan.execute(axml.document)
    assert canonical(axml.document) == pre
    # --- snapshot-based run (same seed → same workload) ------------------
    rng = SeededRng(seed)
    axml2 = generate_catalogue(rng, item_count=item_count, name="Cat")
    rollback = SnapshotRollback()
    pre2 = canonical(axml2.document)
    for _ in range(TXN_LENGTH):
        action = generate_operation(rng, axml2, UPDATE_MIX, selective=True)
        rollback.guard("T1", axml2)
        try:
            apply_action(axml2.document, action)
        except UpdateError:
            continue
    snapshot_bytes = rollback.stats.approx_bytes
    rollback.rollback("T1", axml2)
    assert canonical(axml2.document) == pre2
    return {
        "items": item_count,
        "doc_nodes": doc_nodes,
        "log_bytes": log_bytes,
        "snapshot_bytes": snapshot_bytes,
        "snap/log": ratio(snapshot_bytes, log_bytes),
    }


SIZES = (10, 50, 200, 1000, 4000)


def test_e3_log_vs_snapshot(benchmark):
    rows = [run_point(size) for size in SIZES[:-1]]
    rows.append(benchmark(run_point, SIZES[-1]))
    table = ExperimentTable(
        "E3: operation-log vs snapshot cost (txn length fixed at 8 updates)",
        ["items", "doc_nodes", "log_bytes", "snapshot_bytes", "snap/log"],
    )
    for row in rows:
        table.add_row(**row)
    # Snapshot bytes grow ~linearly with document size...
    assert rows[-1]["snapshot_bytes"] > 50 * rows[0]["snapshot_bytes"]
    # ...while the log is bounded by touched data: the ratio diverges.
    assert rows[-1]["snap/log"] > 10 * rows[0]["snap/log"]
    table.add_note("both mechanisms verified to restore the exact pre-state")
    publish(table, "e3_log_vs_snapshot.txt")
