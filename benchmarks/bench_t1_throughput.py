"""T1 — commit throughput under concurrent load.

Drives the OCC cluster with the concurrent transaction scheduler in
closed-loop mode and sweeps concurrency (clients) x contention
(hot-spot fraction) x failure rate.  The table shows how conflict
retries and terminal aborts grow with in-flight transactions, and what
that costs in commit throughput and arrival-to-commit latency.

Run:  python benchmarks/bench_t1_throughput.py [--smoke] [--seed N]

Everything is seeded: the same seed produces a byte-identical table and
JSON artifact on every run, independent of PYTHONHASHSEED.
"""

import argparse

from repro.sim.throughput import demo_conflict_retry, throughput_sweep

from _util import publish, publish_json


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep (used by CI)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    table = throughput_sweep(seed=args.seed, smoke=args.smoke)
    suffix = "_smoke" if args.smoke else ""
    publish(table, f"t1_throughput{suffix}.txt")
    path = publish_json(
        table,
        f"t1_throughput{suffix}.json",
        seed=args.seed,
        smoke=args.smoke,
        conflict_retry_demo=demo_conflict_retry(seed=11),
    )
    print(f"\njson artifact written: {path}")


if __name__ == "__main__":
    main()
