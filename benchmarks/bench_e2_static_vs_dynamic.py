"""E2 — §3.1's feasibility claim: static compensation cannot cover AXML.

Sweeps the query fraction of a workload over documents with embedded
service calls.  Static handlers are derived diligently at definition
time (fresh old-values, path-based targeting); queries traditionally get
no handler.  Dynamic compensation is constructed from the run-time log.

Shape being checked: static coverage and correctness fall as the query
fraction rises (lazy materialization mutates the document with no
handler to undo it) and as earlier operations make handlers stale;
dynamic correctness stays at 1.0 throughout.
"""

import pytest

from repro.baselines.static_compensation import CoverageReport, StaticCompensator
from repro.query.ast import ActionType
from repro.query.update import apply_action
from repro.sim.harness import ExperimentTable
from repro.sim.rng import SeededRng
from repro.sim.workload import OperationMix, generate_catalogue, generate_operation
from repro.txn.compensation import compensate_records, compensating_actions_for
from repro.axml.materialize import InvocationOutcome, MaterializationEngine
from repro.xmlstore.serializer import canonical

from _util import publish


def _stock_resolver(call, params):
    return InvocationOutcome(["<stock>fresh</stock>"])


def run_point(query_fraction: float, seed: int = 7, operations: int = 60):
    rng = SeededRng(seed)
    mix = OperationMix(
        insert=(1 - query_fraction) / 3,
        delete=(1 - query_fraction) / 3,
        replace=(1 - query_fraction) / 3,
        query=query_fraction,
    )
    static_report = CoverageReport()
    dynamic_restored = 0
    dynamic_total = 0
    compensator = StaticCompensator()
    for index in range(operations):
        axml = generate_catalogue(
            rng, item_count=6, name="Cat", call_density=0.5
        )
        document = axml.document
        action = generate_operation(rng, axml, mix)
        # The static handler is written *now*, against the current state.
        handler = StaticCompensator.derive_handler(action, document)
        key = f"op{index}"
        if handler is not None:
            compensator.define(key, handler)
        # A concurrent-ish earlier change makes some handlers stale.
        if rng.coin(0.3) and action.action_type is not ActionType.QUERY:
            staleifier = generate_operation(rng, axml, OperationMix(0, 0, 1, 0))
            try:
                apply_action(document, staleifier)
            except Exception:
                pass
        pre = document.clone(preserve_ids=True)
        # --- forward execution (queries materialize lazily) ----------
        records = []
        try:
            if action.action_type is ActionType.QUERY:
                engine = MaterializationEngine(axml, _stock_resolver)
                report = engine.materialize_for_query(action.location)
                records = report.change_records()
            else:
                result = apply_action(document, action)
                records = list(result.records)
        except Exception:
            continue
        # --- static compensation on a copy ----------------------------
        static_doc = document.clone(preserve_ids=True)
        compensator.compensate(key, static_doc, pre, static_report)
        # --- dynamic compensation on the real document ----------------
        dynamic_total += 1
        for comp in compensate_records(records, "Cat"):
            apply_action(document, comp, tolerate_missing_targets=True)
        dynamic_restored += int(canonical(document) == canonical(pre))
    return {
        "query_frac": query_fraction,
        "ops": static_report.operations,
        "static_coverage": static_report.coverage_rate,
        "static_correct": static_report.correctness_rate,
        "dynamic_correct": dynamic_restored / dynamic_total if dynamic_total else 1.0,
    }


POINTS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_e2_static_vs_dynamic(benchmark):
    rows = [run_point(p) for p in POINTS[:-1]]
    rows.append(benchmark(run_point, POINTS[-1]))
    table = ExperimentTable(
        "E2: static (pre-defined) vs dynamic compensation",
        ["query_frac", "ops", "static_coverage", "static_correct", "dynamic_correct"],
    )
    for row in rows:
        table.add_row(**row)
    # Dynamic is always exact.
    assert all(row["dynamic_correct"] == 1.0 for row in rows)
    # Static coverage collapses as queries dominate...
    assert rows[-1]["static_coverage"] < rows[0]["static_coverage"]
    assert rows[-1]["static_coverage"] == 0.0
    # ...and static correctness is strictly below dynamic everywhere the
    # workload contains queries or staleness.
    assert all(row["static_correct"] < 1.0 for row in rows if row["query_frac"] > 0)
    table.add_note("queries have no static handler; lazy materialization goes unundone")
    publish(table, "e2_static_vs_dynamic.txt")
