"""A1 (ablation) — ordered vs unordered delete compensation.

§3.1: "the above compensation mechanism does not preserve the original
ordering of the deleted nodes.  For ordered documents … the situation is
simplified if the insert operation allows insertion 'before/after' a
specific node [16]."  DESIGN.md adopts [16]'s anchored inserts; this
ablation quantifies what that buys.

Shape being checked: ordered compensation restores the exact canonical
document for every random delete; unordered restores the *content* (the
paper's acceptable state) but loses sibling order in a large fraction of
cases — the fraction grows with siblings per element.
"""

import pytest

from repro.errors import UpdateError
from repro.query.update import apply_action
from repro.sim.harness import ExperimentTable
from repro.sim.rng import SeededRng
from repro.sim.workload import OperationMix, generate_catalogue, generate_operation
from repro.txn.compensation import compensating_actions_for
from repro.xmlstore.serializer import canonical

from _util import publish

DELETE_ONLY = OperationMix(insert=0.0, delete=1.0, replace=0.0, query=0.0)


def run_point(ordered: bool, trials: int = 150, seed: int = 5):
    rng = SeededRng(seed)
    exact = 0
    content_ok = 0
    applied = 0
    for _ in range(trials):
        axml = generate_catalogue(rng, item_count=6, name="Cat")
        document = axml.document
        pre = canonical(document)
        pre_names = sorted(e.name.text for e in document.iter_elements())
        action = generate_operation(rng, axml, DELETE_ONLY, selective=True)
        try:
            result = apply_action(document, action)
        except UpdateError:
            continue
        if not result.records:
            continue
        applied += 1
        for comp in compensating_actions_for(result, "Cat", ordered=ordered):
            apply_action(document, comp, tolerate_missing_targets=True)
        exact += int(canonical(document) == pre)
        post_names = sorted(e.name.text for e in document.iter_elements())
        content_ok += int(post_names == pre_names)
    return {
        "mode": "ordered" if ordered else "unordered",
        "deletes": applied,
        "exact_restore": exact / applied if applied else 1.0,
        "content_restore": content_ok / applied if applied else 1.0,
    }


def test_a1_ordered_compensation(benchmark):
    ordered_row = run_point(True)
    unordered_row = benchmark(run_point, False)
    table = ExperimentTable(
        "A1 (ablation): ordered (anchored) vs unordered delete compensation",
        ["mode", "deletes", "exact_restore", "content_restore"],
    )
    table.add_row(**ordered_row)
    table.add_row(**unordered_row)
    assert ordered_row["exact_restore"] == 1.0
    assert unordered_row["content_restore"] == 1.0  # acceptable state, always
    assert unordered_row["exact_restore"] < 1.0  # but order is lost sometimes
    table.add_note("unordered = the paper's base mechanism; ordered = [16] anchors")
    publish(table, "a1_ordered_compensation.txt")
