#!/usr/bin/env python3
"""Fail when placement-critical code calls builtin ``hash()``.

Builtin ``hash(str)`` is salted per process (``PYTHONHASHSEED``), so any
placement, routing, or scheduling decision derived from it silently
varies between runs — exactly the nondeterminism this repo's
byte-identical-summary guarantee forbids.  The deterministic substitutes
are :func:`repro.sim.rng.stable_seed` (crc32-based) for seeds and the
crc32 point hashing in :class:`repro.p2p.sharding.ShardRing` for ring
placement.

The check parses each file with :mod:`ast` and flags ``hash(...)`` call
nodes — not text matches, so comments and docstrings that merely
*mention* ``hash()`` (``p2p/peer.py``, ``sim/rng.py``) pass.  A call is
*approved* by a ``hash-ok`` comment on the same line, for code whose
hash genuinely never feeds placement.

Usage: python tools/check_hash_hygiene.py  (exit 1 on findings)
"""

from __future__ import annotations

import ast
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Packages where every hash must be deterministic: the P2P substrate
#: (placement, routing, replication) and the simulation kernel
#: (scheduling, RNG streams).
SCAN_DIRS = (
    os.path.join("src", "repro", "p2p"),
    os.path.join("src", "repro", "sim"),
)

APPROVAL = "hash-ok"

MESSAGE = (
    "builtin hash() is PYTHONHASHSEED-salted — use stable_seed()/crc32 "
    "(see repro.sim.rng, repro.p2p.sharding)"
)


def check_file(path: str) -> list:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"unparseable: {exc.msg}")]
    lines = text.splitlines()
    findings = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
            if APPROVAL in line:
                continue
            findings.append((path, node.lineno, MESSAGE))
    return findings


def main() -> int:
    findings = []
    for scan_dir in SCAN_DIRS:
        for dirpath, dirnames, filenames in os.walk(os.path.join(ROOT, scan_dir)):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                findings.extend(check_file(os.path.join(dirpath, filename)))
    for path, lineno, message in findings:
        rel = os.path.relpath(path, ROOT)
        print(f"{rel}:{lineno}: {message}", file=sys.stderr)
    if findings:
        print(
            f"\n{len(findings)} builtin hash() call(s) in placement-critical "
            f"code; derive values with stable_seed()/zlib.crc32, or mark a "
            f"non-placement use with a '{APPROVAL}' comment.",
            file=sys.stderr,
        )
        return 1
    print("hash hygiene: no builtin hash() in placement-critical code")
    return 0


if __name__ == "__main__":
    sys.exit(main())
