"""Generate docs/API.md from the package's docstrings.

Run:  python tools/gen_api_docs.py            # regenerate
      python tools/gen_api_docs.py --check    # exit 1 if docs/API.md is stale
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import os
import pkgutil
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro  # noqa: E402


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    line = doc.splitlines()[0].strip() if doc else ""
    return line


def public_members(module):
    for name in sorted(vars(module)):
        if name.startswith("_"):
            continue
        obj = vars(module)[name]
        if inspect.ismodule(obj):
            continue
        defined_here = getattr(obj, "__module__", None) == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def iter_modules():
    prefix = repro.__name__ + "."
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def render() -> str:
    lines = [
        "# API reference",
        "",
        "One line per public item, generated from docstrings by",
        "`python tools/gen_api_docs.py` — regenerate after API changes.",
        "",
    ]
    for module in iter_modules():
        members = list(public_members(module))
        header = f"## `{module.__name__}`"
        summary = first_line(module)
        lines.append(header)
        if summary:
            lines.append(f"\n{summary}\n")
        if not members:
            lines.append("")
            continue
        for name, obj in members:
            kind = "class" if inspect.isclass(obj) else "def"
            description = first_line(obj) or "(undocumented)"
            lines.append(f"- **{kind} `{name}`** — {description}")
        lines.append("")
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed docs/API.md instead of writing; "
        "exit 1 on drift (used by CI)",
    )
    args = parser.parse_args()

    text = render()
    out_path = os.path.join(os.path.dirname(__file__), "..", "docs", "API.md")
    if args.check:
        try:
            with open(out_path) as handle:
                committed = handle.read()
        except FileNotFoundError:
            committed = ""
        if committed != text:
            print(
                "docs/API.md is stale — regenerate with "
                "`python tools/gen_api_docs.py`",
                file=sys.stderr,
            )
            return 1
        print("docs/API.md is up to date")
        return 0
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w") as handle:
        handle.write(text)
    lines = text.count("\n")
    undocumented = text.count("(undocumented)")
    print(f"wrote {out_path} ({lines} lines, {undocumented} undocumented items)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
