"""Check that relative markdown links in the docs resolve to real files.

Scans ``README.md``, ``docs/*.md``, and the other top-level ``*.md``
files for ``[text](target)`` links; every relative target (external
``http(s):``/``mailto:`` links and pure ``#anchor`` links are skipped)
must name an existing file or directory relative to the linking file.

Run:  python tools/check_doc_links.py      # exit 1 on any broken link
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — target ends at the first unescaped ')'; good enough
# for the plain links these docs use (no nested parens, no titles).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

# Imported source material, not authored docs: retrieval artifacts may
# reference figures that were never shipped with the text.
EXCLUDE = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def doc_files():
    for path in sorted(REPO_ROOT.glob("*.md")):
        if path.name not in EXCLUDE:
            yield path
    yield from sorted((REPO_ROOT / "docs").glob("*.md"))


def check_file(path: Path) -> list:
    broken = []
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = (path.parent / target_path).resolve()
            if not resolved.exists():
                broken.append((number, target))
    return broken


def main() -> int:
    total_links = 0
    failures = 0
    for path in doc_files():
        broken = check_file(path)
        total_links += 1
        for number, target in broken:
            failures += 1
            rel = path.relative_to(REPO_ROOT)
            print(f"BROKEN: {rel}:{number} -> {target}", file=sys.stderr)
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve ({len(list(doc_files()))} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
