#!/usr/bin/env python3
"""Fail when code copies trees via serialize→parse round trips.

PR 9's structural clone (``Document.clone_tree``) replaced every
serialize→``parse_document`` round trip on the hot paths; this check
keeps them from creeping back in.  Two patterns are flagged:

* ``parse_document(serialize(...))`` — including the multi-line form —
  which re-parses text that was just rendered from a live tree; use
  ``Document.clone_tree()`` instead.
* ``X.from_text(....to_text())`` in one expression (the old
  ``PeerChain.copy`` shape); give the type a structural ``copy()``.

An occurrence is *approved* by a ``roundtrip-ok`` comment on the same
line or within the five lines above it (used by the clone fallback in
``xmlstore/nodes.py``, which deliberately takes the round trip when the
tree is not parse-normal, and by benchmark baselines that measure the
round trip itself).

Usage: python tools/check_serialization_hygiene.py  (exit 1 on findings)
"""

from __future__ import annotations

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Directories scanned (tests are exempt: they pin round-trip
#: equivalence on purpose).
SCAN_DIRS = ("src", "benchmarks")

APPROVAL = "roundtrip-ok"
APPROVAL_WINDOW = 5

PATTERNS = (
    (
        re.compile(r"parse_document\(\s*serialize\("),
        "parse_document(serialize(...)) round trip — use Document.clone_tree()",
    ),
    (
        re.compile(r"\.from_text\([^)\n]*\.to_text\(\)"),
        "from_text(to_text()) round trip — use a structural copy()",
    ),
)


def check_file(path: str) -> list:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    lines = text.splitlines()
    findings = []
    for pattern, message in PATTERNS:
        for match in pattern.finditer(text):
            lineno = text.count("\n", 0, match.start()) + 1
            window = lines[max(0, lineno - 1 - APPROVAL_WINDOW):lineno]
            if any(APPROVAL in line for line in window):
                continue
            findings.append((path, lineno, message))
    return findings


def main() -> int:
    findings = []
    for scan_dir in SCAN_DIRS:
        for dirpath, dirnames, filenames in os.walk(os.path.join(ROOT, scan_dir)):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                findings.extend(check_file(os.path.join(dirpath, filename)))
    for path, lineno, message in findings:
        rel = os.path.relpath(path, ROOT)
        print(f"{rel}:{lineno}: {message}", file=sys.stderr)
    if findings:
        print(
            f"\n{len(findings)} serialization round trip(s) found; copy trees "
            f"with Document.clone_tree() / a structural copy(), or mark a "
            f"deliberate fallback with a '{APPROVAL}' comment.",
            file=sys.stderr,
        )
        return 1
    print("serialization hygiene: no unapproved round trips")
    return 0


if __name__ == "__main__":
    sys.exit(main())
